"""Multi-host sharding: deterministic task partitioning and shard manifests.

A paper-scale grid is too big for one machine.  Because every engine task
carries its own derived seeds (see :mod:`repro.engine.job`,
:mod:`repro.engine.sweep`), the task list can be *partitioned* across
hosts without changing any result: a :class:`ShardSpec` assigns task
``i`` to shard ``i mod count``, each host runs only its slice into its
own ``--cache-dir``, and :mod:`repro.engine.merge` unions the cache
directories afterwards.  A final ``--resume`` run against the merged
directory then serves every task from checkpoints and renders the
figures exactly as a single-host run would have.

The partition is a function of the task *index* alone — indices are
assigned at task-build time, deterministically, before any filtering —
so it is stable across runs, across ``--resume``, and across hosts that
disagree about wall-clock or worker counts.

Each sharded run records a **manifest** (``shard.json`` in its cache
directory): which experiment and context fingerprint it served, how many
tasks the full (unsharded) list has, and which task ids this shard
completed or failed.  Merging cache directories also merges their
manifests, so a coordinator can ask "is the merged grid complete?"
(:meth:`ShardManifest.is_complete`) before rendering figures — the CI
fan-in job does exactly this via ``cache verify``.

Example — two hosts, one grid::

    # host A                                  # host B
    ... grid --shard 0/2 --cache-dir a/       ... grid --shard 1/2 --cache-dir b/

    # coordinator
    ... cache merge a/ b/ --into merged/
    ... cache verify --cache-dir merged/      # manifest says: complete
    ... grid --resume --cache-dir merged/     # all cells from checkpoints
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path

from repro.utils.logging import get_logger

__all__ = [
    "MANIFEST_NAME",
    "ShardManifest",
    "ShardRunResult",
    "ShardSpec",
    "load_manifests",
    "record_durable_manifest",
    "save_manifests",
    "update_manifest",
]

_logger = get_logger("engine")

MANIFEST_NAME = "shard.json"
"""Filename of the shard manifest inside a cache directory."""

_MANIFEST_VERSION = 1


@dataclass(frozen=True)
class ShardSpec:
    """One slice of a deterministic ``index mod count`` task partition.

    ``index`` is zero-based: a three-way split is ``0/3``, ``1/3`` and
    ``2/3``.  ``ShardSpec(0, 1)`` is the degenerate "whole run" shard
    used when recording manifests for unsharded runs.

    Example::

        spec = ShardSpec.parse("1/3")
        spec.owns(4)                  # True: 4 mod 3 == 1
        mine = spec.partition(tasks)  # tasks whose .index this shard owns
    """

    index: int
    """Zero-based shard number, ``0 <= index < count``."""

    count: int
    """Total number of shards in the partition."""

    def __post_init__(self) -> None:
        if self.count < 1:
            raise ValueError(f"shard count must be >= 1, got {self.count}")
        if not 0 <= self.index < self.count:
            raise ValueError(
                f"shard index must be in [0, {self.count}), got {self.index} "
                f"(indices are zero-based: a three-way split is 0/3, 1/3, 2/3)"
            )

    @classmethod
    def parse(cls, text: str) -> "ShardSpec":
        """Parse the CLI form ``"I/N"`` (zero-based index)."""
        index_text, separator, count_text = str(text).partition("/")
        try:
            if not separator:
                raise ValueError
            index, count = int(index_text), int(count_text)
        except ValueError:
            raise ValueError(
                f"shard spec must look like 'I/N' (e.g. 0/3), got {text!r}"
            ) from None
        return cls(index=index, count=count)

    def owns(self, task_index: int) -> bool:
        """Whether ``task_index`` belongs to this shard."""
        return task_index % self.count == self.index

    def partition(self, tasks: list) -> list:
        """This shard's slice of ``tasks`` (original indices preserved)."""
        return [task for task in tasks if self.owns(task.index)]

    def __str__(self) -> str:
        return f"{self.index}/{self.count}"

    def as_dict(self) -> dict:
        """JSON-friendly representation."""
        return {"index": self.index, "count": self.count}


@dataclass
class ShardManifest:
    """Completion record of one experiment's task list across shards.

    One manifest covers one ``(experiment, fingerprint)`` pair — the same
    identity that keys the result cache — so several experiments (or
    profiles) can share a cache directory without their manifests mixing.
    ``shards`` holds one record per contributing :class:`ShardSpec`;
    merging directories unions these records.
    """

    experiment: str
    """Experiment name (``grid``, ``fig9``, ``ablation``)."""

    fingerprint: str
    """Full result-cache context fingerprint this manifest belongs to."""

    task_count: int
    """Length of the full (unsharded) task list."""

    shards: list[dict] = field(default_factory=list)
    """Per-shard records: ``{"index", "count", "completed", "failed"}``."""

    @property
    def key(self) -> str:
        """Identity under which the manifest is stored in ``shard.json``."""
        return f"{self.experiment}:{self.fingerprint[:12]}"

    def completed_ids(self) -> set[int]:
        """Union of task ids completed by any contributing shard."""
        done: set[int] = set()
        for record in self.shards:
            done.update(int(i) for i in record.get("completed", ()))
        return done

    def failed_ids(self) -> set[int]:
        """Union of task ids any shard recorded as failed (minus completed)."""
        failed: set[int] = set()
        for record in self.shards:
            failed.update(int(i) for i in record.get("failed", ()))
        return failed - self.completed_ids()

    def missing_ids(self) -> list[int]:
        """Task ids no contributing shard has completed, ascending."""
        return sorted(set(range(self.task_count)) - self.completed_ids())

    def is_complete(self) -> bool:
        """Whether every task id is completed and none is failed."""
        return not self.missing_ids() and not self.failed_ids()

    def record(
        self,
        spec: ShardSpec,
        completed: set[int] | list[int] | tuple[int, ...],
        failed: set[int] | list[int] | tuple[int, ...] = (),
    ) -> None:
        """Fold one run's outcome into this manifest.

        Repeated runs of the same shard (interrupt + resume) union their
        completed sets rather than duplicating records.
        """
        completed = {int(i) for i in completed}
        failed = {int(i) for i in failed} - completed
        for existing in self.shards:
            if existing["index"] == spec.index and existing["count"] == spec.count:
                done = set(existing.get("completed", ())) | completed
                existing["completed"] = sorted(done)
                existing["failed"] = sorted(
                    (set(existing.get("failed", ())) | failed) - done
                )
                return
        self.shards.append(
            {
                "index": spec.index,
                "count": spec.count,
                "completed": sorted(completed),
                "failed": sorted(failed),
            }
        )
        self.shards.sort(key=lambda r: (r["count"], r["index"]))

    def merge(self, other: "ShardManifest") -> None:
        """Union another manifest of the *same* grid into this one.

        Raises ``ValueError`` when the identities disagree — merging
        manifests of different experiments, fingerprints or task counts
        would fabricate a completeness claim.
        """
        if (self.experiment, self.fingerprint) != (other.experiment, other.fingerprint):
            raise ValueError(
                f"cannot merge manifests of different grids: "
                f"{self.key} vs {other.key}"
            )
        if self.task_count != other.task_count:
            raise ValueError(
                f"manifests for {self.key} disagree on the task count "
                f"({self.task_count} vs {other.task_count}); they describe "
                "different task lists and must not be merged"
            )
        for record in other.shards:
            self.record(
                ShardSpec(int(record["index"]), int(record["count"])),
                record.get("completed", ()),
                record.get("failed", ()),
            )

    def as_dict(self) -> dict:
        """JSON-friendly representation."""
        return {
            "experiment": self.experiment,
            "fingerprint": self.fingerprint,
            "task_count": self.task_count,
            "shards": [dict(record) for record in self.shards],
            "completed": len(self.completed_ids()),
            "missing": self.missing_ids(),
            "failed": sorted(self.failed_ids()),
            "complete": self.is_complete(),
        }

    @staticmethod
    def from_dict(payload: dict) -> "ShardManifest":
        """Inverse of :meth:`as_dict` (derived fields are recomputed)."""
        manifest = ShardManifest(
            experiment=str(payload["experiment"]),
            fingerprint=str(payload["fingerprint"]),
            task_count=int(payload["task_count"]),
        )
        for record in payload.get("shards", ()):
            manifest.record(
                ShardSpec(int(record["index"]), int(record["count"])),
                record.get("completed", ()),
                record.get("failed", ()),
            )
        return manifest


def load_manifests(directory: str | Path) -> dict[str, ShardManifest]:
    """Read ``shard.json`` from a cache directory; ``{}`` when absent/corrupt.

    Returns manifests keyed by :attr:`ShardManifest.key`.  Corruption is
    treated like the caches treat it: as a miss, never an abort.
    """
    path = Path(directory) / MANIFEST_NAME
    try:
        payload = json.loads(path.read_text())
    except OSError:
        return {}
    except ValueError:
        # A writer crashed mid-write (or the file was truncated by a full
        # disk).  Treat it like the caches treat corruption — a miss — but
        # say so: a silently vanishing manifest would look like "nothing
        # sharded ever ran here" to `cache verify`.
        _logger.warning(
            "shard manifest %s is unreadable (crash mid-write?); "
            "treating it as absent", path,
        )
        return {}
    if not isinstance(payload, dict) or payload.get("version") != _MANIFEST_VERSION:
        return {}
    manifests: dict[str, ShardManifest] = {}
    for entry in payload.get("manifests", ()):
        try:
            manifest = ShardManifest.from_dict(entry)
        except (KeyError, TypeError, ValueError):
            continue
        manifests[manifest.key] = manifest
    return manifests


def save_manifests(
    directory: str | Path, manifests: dict[str, ShardManifest]
) -> Path:
    """Atomically write ``shard.json`` (same temp+rename recipe as the caches)."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / MANIFEST_NAME
    payload = {
        "version": _MANIFEST_VERSION,
        "manifests": [
            manifests[key].as_dict() for key in sorted(manifests)
        ],
    }
    tmp = path.with_name(f"{path.name}.{os.getpid()}.tmp")
    tmp.write_text(json.dumps(payload, indent=2, sort_keys=True))
    os.replace(tmp, path)
    return path


def update_manifest(
    directory: str | Path,
    experiment: str,
    fingerprint: str,
    task_count: int,
    spec: ShardSpec,
    completed: set[int] | list[int] | tuple[int, ...],
    failed: set[int] | list[int] | tuple[int, ...] = (),
) -> ShardManifest | None:
    """Fold one run's outcome into the directory's ``shard.json``.

    Read-modify-write of the single manifest file; best-effort like the
    checkpoint writes — an unwritable directory degrades to a warning
    (the results themselves are unaffected) and returns ``None``.
    """
    try:
        manifests = load_manifests(directory)
        manifest = manifests.get(f"{experiment}:{fingerprint[:12]}")
        if manifest is None:
            manifest = ShardManifest(
                experiment=experiment,
                fingerprint=fingerprint,
                task_count=task_count,
            )
        elif manifest.task_count != task_count:
            # A changed task list under an unchanged fingerprint would be
            # a caller bug (ε lists and grids are fingerprinted); start a
            # fresh manifest rather than merging incompatible records.
            _logger.warning(
                "shard manifest for %s had task_count=%d, run has %d; "
                "resetting the manifest",
                manifest.key, manifest.task_count, task_count,
            )
            manifest = ShardManifest(
                experiment=experiment,
                fingerprint=fingerprint,
                task_count=task_count,
            )
        manifest.record(spec, completed, failed)
        manifests[manifest.key] = manifest
        save_manifests(directory, manifests)
        return manifest
    except OSError as error:
        _logger.warning(
            "shard manifest update failed for %s (results are unaffected): %s",
            experiment, error,
        )
        return None


def record_durable_manifest(
    cache_dir: str | Path,
    cache,
    experiment: str,
    tasks: list,
    shard: ShardSpec | None,
) -> str | None:
    """Fold a run's *durably checkpointed* tasks into the shard manifest.

    The single place (used by every runner's ``finally`` block) that
    decides what a manifest may vouch for: only tasks whose checkpoint
    file actually exists under ``cache`` — a task whose cache write
    failed (full disk) must not be certified, or ``cache verify`` would
    green-light a directory missing results.  ``shard=None`` records the
    degenerate ``0/1`` shard of an unsharded run.  Returns the manifest
    path, or ``None`` when the (best-effort) update could not be written.
    """
    relevant = tasks if shard is None else shard.partition(list(tasks))
    durable = [task.index for task in relevant if cache.path_for(task).is_file()]
    manifest = update_manifest(
        cache_dir,
        experiment,
        cache.fingerprint,
        len(tasks),
        shard or ShardSpec(0, 1),
        durable,
    )
    if manifest is None:
        return None
    return str(Path(cache_dir) / MANIFEST_NAME)


@dataclass(frozen=True)
class ShardRunResult:
    """What one shard of an experiment produced (instead of a figure).

    A shard computes and checkpoints its slice of the task list; it
    cannot render the full figure (the other slices live on other
    hosts).  The experiment runners return this summary in shard mode —
    the figure itself is rendered later, from the merged cache, by an
    unsharded ``--resume`` run.
    """

    experiment: str
    shard: ShardSpec
    task_count: int
    """Length of the full (unsharded) task list."""

    completed: tuple[int, ...]
    """Task ids this run completed (computed or served from cache)."""

    manifest_path: str | None
    """Where the shard manifest was recorded (``None`` without a cache)."""

    metadata: dict = field(default_factory=dict)
    """Engine accounting, same shape as the full-run results carry."""

    def render(self) -> str:
        """One-paragraph text summary of the shard run."""
        owned = len(range(self.shard.index, self.task_count, self.shard.count))
        lines = [
            f"shard {self.shard} of experiment '{self.experiment}': "
            f"{len(self.completed)}/{owned} owned tasks completed "
            f"({self.task_count} tasks in the full list)",
        ]
        if self.manifest_path:
            lines.append(f"manifest: {self.manifest_path}")
        lines.append(
            "merge the shard cache directories (`cache merge ... --into DIR`), "
            "check them (`cache verify`), then re-run without --shard but with "
            "--resume to render the figures"
        )
        return "\n".join(lines)

    def as_dict(self) -> dict:
        """JSON-friendly representation."""
        return {
            "experiment": self.experiment,
            "shard": self.shard.as_dict(),
            "task_count": self.task_count,
            "completed": list(self.completed),
            "manifest_path": self.manifest_path,
            "metadata": dict(self.metadata),
        }
