"""The cell-job engine: parallel, resumable execution of sweep workloads.

The paper's Algorithm 1 — and every sweep-style workload built on it — is
embarrassingly parallel at the granularity of one grid cell.  This package
turns that observation into infrastructure, split into three layers:

* **job** (:mod:`repro.engine.job`) — :class:`CellTask`, a picklable
  description of one cell with deterministically derived seeds, and
  :func:`run_cell_task`, the pure function evaluating it;
* **scheduler** (:mod:`repro.engine.scheduler`) — :func:`run_cell_tasks`,
  executing a task list serially or on a fork pool with identical results;
* **cache** (:mod:`repro.engine.cache`) — :class:`CellCache`, atomic JSON
  checkpoints keyed by a context fingerprint, making interrupted grid runs
  resumable.

:class:`repro.robustness.exploration.RobustnessExplorer` is the primary
consumer; future sweeps (ablation grids, transfer studies) should build on
the same layers instead of hand-rolling loops.
"""

from repro.engine.cache import CellCache, context_fingerprint
from repro.engine.job import (
    CellTask,
    ExplorationJobContext,
    build_cell_tasks,
    make_cell_task,
    run_cell_task,
)
from repro.engine.scheduler import ScheduleStats, run_cell_tasks

__all__ = [
    "CellCache",
    "CellTask",
    "ExplorationJobContext",
    "ScheduleStats",
    "build_cell_tasks",
    "context_fingerprint",
    "make_cell_task",
    "run_cell_task",
    "run_cell_tasks",
]
