"""The experiment-job engine: parallel, resumable execution of sweep workloads.

The paper's Algorithm 1 — and every sweep-style workload built on it — is
embarrassingly parallel at the granularity of one job.  This package
turns that observation into infrastructure, split into three layers:

* **jobs** (:mod:`repro.engine.job`, :mod:`repro.engine.sweep`) — tiny,
  picklable task descriptions with deterministically derived seeds, and
  the pure functions evaluating them: :class:`CellTask` /
  :func:`run_cell_task` for one ``(Vth, T)`` grid cell, :class:`SweepTask`
  / :func:`run_sweep_task` for one trained-variant ε-sweep (Fig. 9,
  ablations);
* **scheduler** (:mod:`repro.engine.scheduler`) — :func:`run_tasks`,
  executing any task list serially, on a fork pool, or on a spawn pool
  that rebuilds the context from a :class:`ContextSpec`, with identical
  results in every mode;
* **caches** (:mod:`repro.engine.cache`) — :class:`CellCache` /
  :class:`SweepCache` atomic JSON result checkpoints and the
  :class:`WeightCache` of trained ``state_dict`` archives, all keyed by
  context fingerprints, making interrupted runs resumable and
  security-only re-sweeps retraining-free;
* **search** (:mod:`repro.engine.search`) — :func:`run_halving_search`,
  a successive-halving scheduler that replaces the exhaustive sweep with
  budgeted rungs, warm-starting promoted cells from the nearest cached
  :class:`WeightCache` archive and auditing the shortcut with a
  warm-vs-cold bias gate;
* **sharding** (:mod:`repro.engine.shard`, :mod:`repro.engine.merge`) —
  :class:`ShardSpec` deterministically partitions any task list across
  hosts (``task i -> shard i mod N``), shard manifests record per-shard
  completion, and :func:`merge_cache_dirs` federates the per-host cache
  directories back into one a ``--resume`` run can render figures from.

:class:`repro.robustness.exploration.RobustnessExplorer` and the
experiment runners in :mod:`repro.experiments` are the consumers; future
sweeps (transfer studies) should build on the same layers instead of
hand-rolling loops.  See ``docs/architecture.md`` for the full layer map
and ``docs/sharding.md`` for the multi-host workflow.
"""

from repro.engine.cache import (
    CacheEntry,
    CellCache,
    SweepCache,
    WeightCache,
    WeightEntry,
    cache_stats,
    clear_cache_dir,
    context_fingerprint,
    entry_provenance,
    entry_timings,
    gc_cache_dir,
    nearest_weight_entry,
    scan_cache_dir,
    sweep_fingerprint,
    training_fingerprint,
)
from repro.engine.job import (
    CellTask,
    ExplorationJobContext,
    WarmStartRef,
    build_cell_tasks,
    make_cell_task,
    run_cell_task,
)
from repro.engine.metrics import (
    ATTEMPT_BUCKETS,
    CATALOG,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    configure_metrics,
    flush_metrics,
    get_registry,
    merge_snapshots,
    metrics_enabled,
    read_metrics_dir,
    render_snapshot_text,
    reset_metrics,
)
from repro.engine.merge import (
    CacheMergeError,
    MergeReport,
    merge_cache_dirs,
    verify_cache_dir,
)
from repro.engine.queue import (
    QueueError,
    QueueRunResult,
    WorkQueue,
    merge_event_logs,
    queue_status,
    read_events,
    run_queued_tasks,
)
from repro.engine.resilience import (
    QUARANTINE_EXIT_CODE,
    AttemptLedger,
    ChaosConfig,
    ResilienceConfig,
    RetryPolicy,
    TaskTimeout,
    Watchdog,
    WorkerRetired,
)
from repro.engine.scheduler import (
    ContextSpec,
    ScheduleStats,
    run_cell_tasks,
    run_tasks,
)
from repro.engine.search import (
    RungReport,
    SearchConfig,
    SearchResult,
    derive_schedule,
    parse_budget_schedule,
    run_halving_search,
)
from repro.engine.shard import (
    ShardManifest,
    ShardRunResult,
    ShardSpec,
    load_manifests,
    record_durable_manifest,
    update_manifest,
)
from repro.engine.sweep import (
    SweepJobContext,
    SweepResult,
    SweepTask,
    make_sweep_task,
    run_sweep_task,
)

__all__ = [
    "ATTEMPT_BUCKETS",
    "AttemptLedger",
    "CATALOG",
    "CacheEntry",
    "CacheMergeError",
    "CellCache",
    "CellTask",
    "ChaosConfig",
    "ContextSpec",
    "Counter",
    "ExplorationJobContext",
    "Gauge",
    "Histogram",
    "MergeReport",
    "MetricsRegistry",
    "QUARANTINE_EXIT_CODE",
    "QueueError",
    "QueueRunResult",
    "ResilienceConfig",
    "RetryPolicy",
    "TaskTimeout",
    "Watchdog",
    "WorkerRetired",
    "RungReport",
    "ScheduleStats",
    "SearchConfig",
    "SearchResult",
    "ShardManifest",
    "ShardRunResult",
    "ShardSpec",
    "SweepCache",
    "SweepJobContext",
    "SweepResult",
    "SweepTask",
    "WarmStartRef",
    "WeightCache",
    "WeightEntry",
    "WorkQueue",
    "build_cell_tasks",
    "cache_stats",
    "clear_cache_dir",
    "configure_metrics",
    "context_fingerprint",
    "derive_schedule",
    "entry_provenance",
    "entry_timings",
    "flush_metrics",
    "gc_cache_dir",
    "get_registry",
    "load_manifests",
    "make_cell_task",
    "make_sweep_task",
    "merge_cache_dirs",
    "merge_event_logs",
    "merge_snapshots",
    "metrics_enabled",
    "nearest_weight_entry",
    "parse_budget_schedule",
    "queue_status",
    "read_events",
    "read_metrics_dir",
    "record_durable_manifest",
    "render_snapshot_text",
    "reset_metrics",
    "run_cell_task",
    "run_cell_tasks",
    "run_halving_search",
    "run_queued_tasks",
    "run_sweep_task",
    "run_tasks",
    "scan_cache_dir",
    "sweep_fingerprint",
    "training_fingerprint",
    "update_manifest",
    "verify_cache_dir",
]
