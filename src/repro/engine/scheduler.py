"""Serial / multi-process scheduler for experiment jobs.

:func:`run_tasks` drives any list of picklable tasks (grid
:class:`~repro.engine.job.CellTask` jobs, variant
:class:`~repro.engine.sweep.SweepTask` jobs, future sweep families)
through a pure job function, either in-process (``jobs=1``) or on a
``multiprocessing`` pool (``jobs>1``).  Because every task carries its
own derived seeds, all modes produce identical results — parallelism only
changes wall-clock, never science.

Two pool backends are available, selected via ``start_method``:

* ``fork`` — the job context (datasets, model factory — often a closure)
  is inherited by the workers, nothing is pickled per pool;
* ``spawn`` — for platforms without ``fork``: the caller supplies a
  :class:`ContextSpec` naming a module-level context *builder*, and each
  worker reconstructs profile, data and model factory locally.

``auto`` (the default) prefers ``fork``, falls back to ``spawn`` when a
spec is available, and otherwise degrades to serial with a warning.

Example — the same tasks through both backends::

    results, _ = run_tasks(context, tasks, run_sweep_task, jobs=4)
    spec = ContextSpec("repro.experiments.sweeps:build_fig9_context",
                       {"profile": "smoke"})
    same, _ = run_tasks(context, tasks, run_sweep_task, jobs=4,
                        start_method="spawn", context_spec=spec)

Cache integration happens here, in the parent process: completed tasks
are checkpointed as they arrive (so an interrupted parallel run still
resumes), and with ``resume=True`` cached results are served without
dispatching work.
"""

from __future__ import annotations

import time
from collections.abc import Callable, Sequence
from dataclasses import dataclass, field
from importlib import import_module

from repro.engine.job import ExplorationJobContext, run_cell_task
from repro.engine.metrics import (
    configure_metrics,
    flush_metrics,
    metrics_dir,
    record_task,
    reset_metrics,
)
from repro.engine.shard import ShardSpec
from repro.utils.logging import get_logger

__all__ = ["ContextSpec", "ScheduleStats", "run_cell_tasks", "run_tasks"]

_logger = get_logger("engine")

_START_METHODS = ("auto", "fork", "spawn")

ProgressCallback = Callable[[object, object, bool], None]
"""``(task, result, from_cache)`` invoked in the parent after each task."""

# Worker-side state, installed once per pool by the initializer so tasks
# (tiny dataclasses) are the only per-job pickling traffic.
_WORKER_CONTEXT: object | None = None
_WORKER_RUN: Callable | None = None


@dataclass(frozen=True)
class ContextSpec:
    """Picklable recipe for rebuilding a job context inside a spawn worker.

    ``target`` names a module-level builder as ``"package.module:function"``;
    ``kwargs`` must be picklable (strings, numbers, paths as strings).  The
    builder is imported and called once per worker, so closures and datasets
    never cross the process boundary.

    Example::

        spec = ContextSpec(
            target="repro.experiments.sweeps:build_ablation_context",
            kwargs={"profile": "smoke", "cache_dir": "/tmp/cells"},
        )
        context = spec.resolve()   # what each spawn worker executes
    """

    target: str
    """Builder location, ``"package.module:function"``."""

    kwargs: dict = field(default_factory=dict)
    """Keyword arguments handed to the builder."""

    def resolve(self):
        """Import the builder and construct the context."""
        module_name, separator, function_name = self.target.partition(":")
        if not separator or not module_name or not function_name:
            raise ValueError(
                f"ContextSpec target must look like 'package.module:function', "
                f"got {self.target!r}"
            )
        builder = getattr(import_module(module_name), function_name)
        return builder(**self.kwargs)


def _init_worker(context_or_spec, run_fn: Callable, metrics_directory=None) -> None:
    global _WORKER_CONTEXT, _WORKER_RUN
    if isinstance(context_or_spec, ContextSpec):
        context_or_spec = context_or_spec.resolve()
    _WORKER_CONTEXT = context_or_spec
    _WORKER_RUN = run_fn
    # Metrics: a forked worker inherits the parent's registry *counts*;
    # flushing those again under the worker's own id would double-count
    # on merge, so drop them while keeping (or, for spawn, installing)
    # the snapshot directory.
    if metrics_directory is None:
        reset_metrics()
    else:
        configure_metrics(metrics_directory)
        reset_metrics(keep_dir=True)


def _run_in_worker(task) -> tuple[int, object]:
    assert _WORKER_RUN is not None, "worker pool initialized without a job function"
    result = task.index, _WORKER_RUN(_WORKER_CONTEXT, task)
    # Worker-side counters (weight-cache hits inside the job function)
    # are flushed per task, so a crashed worker still leaves its last
    # consistent snapshot behind.
    flush_metrics()
    return result


@dataclass
class ScheduleStats:
    """Accounting of one scheduler invocation (ends up in result metadata)."""

    jobs: int
    """Worker processes actually used (1 = serial)."""

    total_cells: int
    cached_cells: int
    """Tasks served from checkpoints instead of being computed."""

    computed_cells: int
    elapsed_seconds: float
    """Parent-side wall clock for the whole schedule."""

    workers: list[str] = field(default_factory=list)
    """Distinct process names that computed at least one task."""

    start_method: str = "serial"
    """Pool backend actually used: ``serial``, ``fork`` or ``spawn``."""

    shard: str = ""
    """Shard slice this schedule served (``"1/3"``; empty = unsharded)."""

    def as_dict(self) -> dict:
        """JSON-friendly representation."""
        return {
            "jobs": self.jobs,
            "total_cells": self.total_cells,
            "cached_cells": self.cached_cells,
            "computed_cells": self.computed_cells,
            "elapsed_seconds": self.elapsed_seconds,
            "workers": list(self.workers),
            "start_method": self.start_method,
            "shard": self.shard,
        }


def _select_backend(start_method: str, context, context_spec: ContextSpec | None):
    """Pick ``(mp_context, worker_init_arg, method_name)`` for the pool.

    Returns ``(None, None, "serial")`` when no usable backend exists — the
    scheduler then degrades to in-process execution rather than failing,
    except for an explicit ``spawn`` request without the spec it needs
    (a programming error worth surfacing).
    """
    import multiprocessing

    available = multiprocessing.get_all_start_methods()
    if start_method in ("auto", "fork") and "fork" in available:
        return multiprocessing.get_context("fork"), context, "fork"
    if start_method == "fork":
        _logger.warning(
            "multiprocessing 'fork' start method unavailable; "
            "falling back to serial execution"
        )
        return None, None, "serial"
    if context_spec is None:
        # Explicit spawn without a spec was already rejected up front in
        # run_tasks; reaching here means start_method == "auto".
        _logger.warning(
            "no 'fork' start method and no context_spec for 'spawn'; "
            "falling back to serial execution"
        )
        return None, None, "serial"
    if "spawn" not in available:
        _logger.warning(
            "multiprocessing 'spawn' start method unavailable; "
            "falling back to serial execution"
        )
        return None, None, "serial"
    return multiprocessing.get_context("spawn"), context_spec, "spawn"


def run_tasks(
    context,
    tasks: Sequence,
    run_fn: Callable,
    jobs: int = 1,
    cache=None,
    resume: bool = False,
    progress: ProgressCallback | None = None,
    start_method: str = "auto",
    context_spec: ContextSpec | None = None,
    shard: ShardSpec | None = None,
    pending_order: Callable[[list], list] | None = None,
) -> tuple[list, ScheduleStats]:
    """Execute ``tasks`` and return ``(results, stats)`` in task order.

    With ``shard`` set, only the tasks the shard owns (``task.index mod
    shard.count == shard.index``) are served — from cache or by
    computing — and ``results`` covers exactly that slice, in task
    order.  The partition depends only on task indices, so it is stable
    across hosts and across ``--resume``.

    Parameters
    ----------
    context:
        Shared job inputs (factory, datasets, config).  Any object the
        ``run_fn`` understands; must match what ``context_spec`` rebuilds.
    tasks:
        Jobs to evaluate.  Each needs a unique integer ``.index``.
    run_fn:
        Pure job function ``(context, task) -> result`` — a *module-level*
        function (e.g. :func:`~repro.engine.job.run_cell_task` or
        :func:`~repro.engine.sweep.run_sweep_task`) so worker pools can
        pickle it by reference.
    jobs:
        Worker processes; ``1`` runs in-process.  Capped at the number of
        pending tasks.
    cache:
        Optional checkpoint store (:class:`~repro.engine.cache.CellCache`
        or :class:`~repro.engine.cache.SweepCache`).  Completed tasks are
        always checkpointed through it; cached results are *reused* only
        when ``resume`` is set.
    resume:
        Serve already-checkpointed tasks from ``cache`` instead of
        recomputing them.  Requires ``cache`` — resuming without a
        checkpoint store would silently recompute everything.
    progress:
        Parent-side callback per completed task (logging, UIs).
    start_method:
        ``auto`` (prefer fork, else spawn-with-spec, else serial),
        ``fork`` or ``spawn``.
    context_spec:
        Recipe for rebuilding ``context`` inside spawn workers; required
        for ``start_method='spawn'``, optional fallback for ``auto``.
    shard:
        Optional :class:`~repro.engine.shard.ShardSpec` restricting this
        invocation to its deterministic slice of the task list
        (multi-host runs: one shard per host, caches merged afterwards).
    pending_order:
        Optional reordering of the to-be-computed tasks before dispatch
        (e.g. :func:`repro.engine.costs.order_cell_tasks` for
        longest-first scheduling).  Execution order only: results are
        still returned — and checkpointed — in declared task order, and
        every task carries its own seeds, so reordering moves wall-clock,
        never science.
    """
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    if start_method not in _START_METHODS:
        raise ValueError(
            f"unknown start_method {start_method!r}; choose from {_START_METHODS}"
        )
    if start_method == "spawn" and context_spec is None:
        # Validated up front, not at pool creation: a warm cache can leave
        # too few pending tasks for a pool, and this programming error
        # must not pass or fail depending on cache state.
        raise ValueError(
            "start_method='spawn' requires a context_spec: spawn workers "
            "cannot inherit the in-memory job context and must rebuild it "
            "from a module-level builder"
        )
    if resume and cache is None:
        raise ValueError("resume=True requires a cache to resume from")
    start = time.perf_counter()
    if shard is not None:
        # Partition before anything else (cache lookups included): a
        # shard must neither compute nor serve tasks it does not own, or
        # two hosts would disagree about who completed what.
        tasks = shard.partition(list(tasks))
    results: dict[int, object] = {}
    by_index = {task.index: task for task in tasks}
    if len(by_index) != len(tasks):
        raise ValueError("task indices must be unique")

    pending: list = []
    cached = 0
    for task in tasks:
        result = cache.get(task) if (cache is not None and resume) else None
        if result is not None:
            results[task.index] = result
            cached += 1
            record_task(result, cached=True)
            if progress is not None:
                progress(task, result, True)
        else:
            pending.append(task)
    if resume and cached == 0 and tasks:
        if getattr(cache, "any_entries", lambda: False)():
            # Checkpoints exist but none match: a mispointed cache
            # directory or a changed config/fingerprint — the cases where
            # "resume" would otherwise silently recompute everything.
            _logger.warning(
                "resume requested but none of the existing checkpoints "
                "match this configuration; computing all %d tasks from "
                "scratch",
                len(tasks),
            )
        else:
            # Interrupted before the first task completed: nothing to
            # resume from yet, which is expected, not suspicious.
            _logger.info(
                "resume requested but no checkpoints exist yet; "
                "computing all %d tasks",
                len(tasks),
            )

    if pending_order is not None:
        reordered = pending_order(list(pending))
        if sorted(task.index for task in reordered) != sorted(
            task.index for task in pending
        ):
            raise ValueError("pending_order must permute the pending tasks")
        pending = reordered

    computed_workers: set[str] = set()
    cache_write_failed = False

    def record(task, result) -> None:
        nonlocal cache_write_failed
        results[task.index] = result
        record_task(result, cached=False)
        worker = getattr(result, "worker", "")
        if worker:
            computed_workers.add(worker)
        if cache is not None and not cache_write_failed:
            # Checkpointing is a convenience; an unwritable cache directory
            # (read-only cwd, full disk) must not abort the computation.
            # A transient blip (ENOSPC while something else frees space,
            # a remounting filesystem) gets one bounded retry; after a
            # second failure, stop attempting further writes.
            try:
                cache.put(task, result)
            except OSError as first_error:
                _logger.warning(
                    "cache write failed (%s); retrying once", first_error
                )
                time.sleep(0.1)
                try:
                    cache.put(task, result)
                except OSError as error:
                    cache_write_failed = True
                    _logger.warning(
                        "checkpointing disabled for the rest of this run: "
                        "cache write failed again (%s)",
                        error,
                    )
        if progress is not None:
            progress(task, result, False)

    effective_jobs = min(jobs, len(pending)) if pending else 1
    method_used = "serial"
    if effective_jobs > 1:
        mp_context, init_arg, method_used = _select_backend(
            start_method, context, context_spec
        )
        if mp_context is None:
            effective_jobs = 1
    if effective_jobs > 1:
        # ProcessPoolExecutor rather than multiprocessing.Pool: a worker
        # dying hard (OOM kill, segfault) raises BrokenProcessPool here
        # instead of hanging imap forever.  Completed tasks were already
        # checkpointed via record(), so --resume picks up after the crash.
        from concurrent.futures import ProcessPoolExecutor, as_completed

        with ProcessPoolExecutor(
            max_workers=effective_jobs,
            mp_context=mp_context,
            initializer=_init_worker,
            initargs=(init_arg, run_fn, metrics_dir()),
        ) as pool:
            futures = [pool.submit(_run_in_worker, task) for task in pending]
            for future in as_completed(futures):
                index, result = future.result()
                record(by_index[index], result)
    else:
        method_used = "serial"
        for task in pending:
            record(task, run_fn(context, task))

    ordered = [results[task.index] for task in tasks]
    stats = ScheduleStats(
        jobs=effective_jobs,
        total_cells=len(tasks),
        cached_cells=cached,
        computed_cells=len(pending),
        elapsed_seconds=time.perf_counter() - start,
        workers=sorted(computed_workers),
        start_method=method_used,
        shard="" if shard is None else str(shard),
    )
    flush_metrics()
    return ordered, stats


def run_cell_tasks(
    context: ExplorationJobContext,
    tasks: Sequence,
    jobs: int = 1,
    cache=None,
    resume: bool = False,
    progress: ProgressCallback | None = None,
    start_method: str = "auto",
    context_spec: ContextSpec | None = None,
    shard: ShardSpec | None = None,
    pending_order: Callable[[list], list] | None = None,
) -> tuple[list, ScheduleStats]:
    """Grid-cell convenience wrapper: :func:`run_tasks` with
    :func:`~repro.engine.job.run_cell_task` as the job function.

    Example::

        cells, stats = run_cell_tasks(context, build_cell_tasks(config),
                                      jobs=4, cache=cache, resume=True)
    """
    return run_tasks(
        context,
        tasks,
        run_cell_task,
        jobs=jobs,
        cache=cache,
        resume=resume,
        progress=progress,
        start_method=start_method,
        context_spec=context_spec,
        shard=shard,
        pending_order=pending_order,
    )
