"""Serial / multi-process scheduler for cell jobs.

:func:`run_cell_tasks` drives a list of :class:`~repro.engine.job.CellTask`
through :func:`~repro.engine.job.run_cell_task`, either in-process
(``jobs=1``) or on a ``multiprocessing`` fork pool (``jobs>1``).  Because
every task carries its own derived seeds, the two modes produce identical
:class:`~repro.robustness.results.CellResult` values — parallelism only
changes wall-clock, never science.

Cache integration happens here, in the parent process: completed cells are
checkpointed as they arrive (so an interrupted parallel run still resumes),
and with ``resume=True`` cached cells are served without dispatching work.

The pool uses the ``fork`` start method so the job context (datasets,
model factory — often a closure) is inherited rather than pickled; on
platforms without ``fork`` the scheduler degrades to serial execution
with a warning rather than failing.
"""

from __future__ import annotations

import time
from collections.abc import Callable, Sequence
from dataclasses import dataclass, field

from repro.engine.job import CellTask, ExplorationJobContext, run_cell_task
from repro.robustness.results import CellResult
from repro.utils.logging import get_logger

__all__ = ["ScheduleStats", "run_cell_tasks"]

_logger = get_logger("engine")

ProgressCallback = Callable[[CellTask, CellResult, bool], None]
"""``(task, cell, from_cache)`` invoked in the parent after each cell."""

# Worker-side context, installed once per pool by the initializer so tasks
# (tiny dataclasses) are the only per-job pickling traffic.
_WORKER_CONTEXT: ExplorationJobContext | None = None


def _init_worker(context: ExplorationJobContext) -> None:
    global _WORKER_CONTEXT
    _WORKER_CONTEXT = context


def _run_in_worker(task: CellTask) -> tuple[int, CellResult]:
    assert _WORKER_CONTEXT is not None, "worker pool initialized without context"
    return task.index, run_cell_task(_WORKER_CONTEXT, task)


@dataclass
class ScheduleStats:
    """Accounting of one scheduler invocation (ends up in result metadata)."""

    jobs: int
    """Worker processes actually used (1 = serial)."""

    total_cells: int
    cached_cells: int
    """Cells served from checkpoints instead of being computed."""

    computed_cells: int
    elapsed_seconds: float
    """Parent-side wall clock for the whole schedule."""

    workers: list[str] = field(default_factory=list)
    """Distinct process names that computed at least one cell."""

    def as_dict(self) -> dict:
        """JSON-friendly representation."""
        return {
            "jobs": self.jobs,
            "total_cells": self.total_cells,
            "cached_cells": self.cached_cells,
            "computed_cells": self.computed_cells,
            "elapsed_seconds": self.elapsed_seconds,
            "workers": list(self.workers),
        }


def _fork_context():
    import multiprocessing

    try:
        return multiprocessing.get_context("fork")
    except ValueError:
        return None


def run_cell_tasks(
    context: ExplorationJobContext,
    tasks: Sequence[CellTask],
    jobs: int = 1,
    cache=None,
    resume: bool = False,
    progress: ProgressCallback | None = None,
) -> tuple[list[CellResult], ScheduleStats]:
    """Execute ``tasks`` and return ``(cells, stats)`` in task order.

    Parameters
    ----------
    context:
        Shared job inputs (factory, datasets, config).
    tasks:
        Cells to evaluate (from :func:`~repro.engine.job.build_cell_tasks`).
    jobs:
        Worker processes; ``1`` runs in-process.  Capped at the number of
        pending cells.
    cache:
        Optional :class:`~repro.engine.cache.CellCache`.  Completed cells
        are always checkpointed through it; cached cells are *reused* only
        when ``resume`` is set.
    resume:
        Serve already-checkpointed cells from ``cache`` instead of
        recomputing them.  Requires ``cache`` — resuming without a
        checkpoint store would silently recompute everything.
    progress:
        Parent-side callback per completed cell (logging, UIs).
    """
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    if resume and cache is None:
        raise ValueError("resume=True requires a cache to resume from")
    start = time.perf_counter()
    results: dict[int, CellResult] = {}
    by_index = {task.index: task for task in tasks}
    if len(by_index) != len(tasks):
        raise ValueError("task indices must be unique")

    pending: list[CellTask] = []
    cached = 0
    for task in tasks:
        cell = cache.get(task) if (cache is not None and resume) else None
        if cell is not None:
            results[task.index] = cell
            cached += 1
            if progress is not None:
                progress(task, cell, True)
        else:
            pending.append(task)
    if resume and cached == 0 and tasks:
        if getattr(cache, "any_entries", lambda: False)():
            # Checkpoints exist but none match: a mispointed cache
            # directory or a changed config/fingerprint — the cases where
            # "resume" would otherwise silently recompute everything.
            _logger.warning(
                "resume requested but none of the existing checkpoints "
                "match this configuration; computing all %d cells from "
                "scratch",
                len(tasks),
            )
        else:
            # Interrupted before the first cell completed: nothing to
            # resume from yet, which is expected, not suspicious.
            _logger.info(
                "resume requested but no checkpoints exist yet; "
                "computing all %d cells",
                len(tasks),
            )

    computed_workers: set[str] = set()
    cache_write_failed = False

    def record(task: CellTask, cell: CellResult) -> None:
        nonlocal cache_write_failed
        results[task.index] = cell
        if cell.worker:
            computed_workers.add(cell.worker)
        if cache is not None and not cache_write_failed:
            # Checkpointing is a convenience; an unwritable cache directory
            # (read-only cwd, full disk) must not abort the computation.
            # After the first failed write, stop attempting further ones.
            try:
                cache.put(task, cell)
            except OSError as error:
                cache_write_failed = True
                _logger.warning(
                    "cell checkpointing disabled for the rest of this run: "
                    "cache write failed (%s)",
                    error,
                )
        if progress is not None:
            progress(task, cell, False)

    effective_jobs = min(jobs, len(pending)) if pending else 1
    if effective_jobs > 1:
        mp_context = _fork_context()
        if mp_context is None:
            _logger.warning(
                "multiprocessing 'fork' start method unavailable; "
                "falling back to serial execution"
            )
            effective_jobs = 1
    if effective_jobs > 1:
        # ProcessPoolExecutor rather than multiprocessing.Pool: a worker
        # dying hard (OOM kill, segfault) raises BrokenProcessPool here
        # instead of hanging imap forever.  Completed cells were already
        # checkpointed via record(), so --resume picks up after the crash.
        from concurrent.futures import ProcessPoolExecutor, as_completed

        with ProcessPoolExecutor(
            max_workers=effective_jobs,
            mp_context=mp_context,
            initializer=_init_worker,
            initargs=(context,),
        ) as pool:
            futures = [pool.submit(_run_in_worker, task) for task in pending]
            for future in as_completed(futures):
                index, cell = future.result()
                record(by_index[index], cell)
    else:
        for task in pending:
            record(task, run_cell_task(context, task))

    cells = [results[task.index] for task in tasks]
    stats = ScheduleStats(
        jobs=effective_jobs,
        total_cells=len(tasks),
        cached_cells=cached,
        computed_cells=len(pending),
        elapsed_seconds=time.perf_counter() - start,
        workers=sorted(computed_workers),
    )
    return cells, stats
