"""Fleet resilience: retry, quarantine, graceful retirement, watchdog.

The work-stealing queue (:mod:`repro.engine.queue`) *detects* faults —
dead workers get their leases stolen, crashes land in the event logs —
but detection alone leaves a failed task abandoned forever and the only
worker-exit path is TTL expiry.  This module supplies the supervision
layer that turns those detections into recovery:

* **retry with capped exponential backoff** — a task failure writes an
  ``attempt_<i>_<n>.json`` record beside the queue's leases, the lease
  is released, and the task re-enqueues after a deterministic backoff
  (injectable clock, seeded jitter) so another worker retries it;
* **poison-task quarantine** — after ``max_attempts`` distinct failures
  the task is committed as a ``quarantined_<i>.json`` marker carrying
  the full attempt history and last traceback.  The rest of the grid
  completes; coordinators (``cache watch``, ``queue_status``) surface
  the quarantined cells and the CLI exits with
  :data:`QUARANTINE_EXIT_CODE` instead of hanging or silently dropping
  results;
* **graceful retirement** — :class:`DrainGuard` turns SIGTERM/SIGINT
  into a drain: the in-flight phase is aborted with
  :class:`WorkerRetired`, a ``handoff_<i>.json`` tombstone is written so
  peers reclaim the lease *immediately* instead of waiting out the TTL,
  and the worker leaves after flushing metrics and certifying its
  manifest.  A second signal aborts immediately (``KeyboardInterrupt``);
* **hung-task watchdog** — :class:`Watchdog` arms a per-task deadline
  (priced from the cost model by the runners: ``k ×`` predicted phase
  seconds, floored for cold cells) and injects :class:`TaskTimeout`
  into the compute thread when it blows, routing the task through the
  same retry/quarantine path as a crash.

Everything here is observational or recovery-only: a fully-healthy run
takes none of these paths and stays byte-identical to an unsupervised
one (the parity tests assert it).

The chaos knobs (:class:`ChaosConfig`) are the fault-injection side of
the same coin: seeded transient failures, checkpoint corruption and
permanently-poisoned tasks, driven from environment variables so the
fleet harness (``scripts/run_queue_fleet.py``, CI's chaos leg) can hurt
real worker subprocesses without bespoke test builds.  Injected
transient faults strike only a task's *first* attempt, so chaos alone
can never quarantine a task — CI gates on exactly that.

Only the standard library is imported; like :mod:`repro.engine.metrics`
this module sits below every other engine layer.
"""

from __future__ import annotations

import json
import os
import random
import signal
import threading
import time
from collections.abc import Callable
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path

try:  # CPython-only: the watchdog's abort mechanism.
    import ctypes
except ImportError:  # pragma: no cover - no ctypes on exotic builds
    ctypes = None

__all__ = [
    "AttemptLedger",
    "ChaosConfig",
    "ChaosFailure",
    "DEFAULT_MAX_ATTEMPTS",
    "DrainGuard",
    "QUARANTINE_EXIT_CODE",
    "ResilienceConfig",
    "RetryPolicy",
    "TaskTimeout",
    "Watchdog",
    "WorkerRetired",
    "attempt_records",
    "handoff_records",
    "quarantined_indices",
    "read_json",
    "replace_json",
    "write_json_exclusive",
]

DEFAULT_MAX_ATTEMPTS = 3
"""Distinct failures a task may accumulate before it is quarantined."""

QUARANTINE_EXIT_CODE = 3
"""Process exit code of a run (or ``cache watch``) that saw quarantined
tasks: the grid completed *minus* those cells, which a coordinator must
treat as an alert, not a success."""

CHAOS_FAIL_RATE_ENV = "REPRO_CHAOS_FAIL_RATE"
CHAOS_CORRUPT_RATE_ENV = "REPRO_CHAOS_CORRUPT_RATE"
CHAOS_POISON_ENV = "REPRO_CHAOS_POISON_TASKS"
CHAOS_SEED_ENV = "REPRO_CHAOS_SEED"


class TaskTimeout(Exception):
    """Injected by the :class:`Watchdog` into a phase that blew its
    deadline; handled as a ``timeout`` attempt on the retry path."""


class WorkerRetired(Exception):
    """Raised (from the signal handler) inside the in-flight task when a
    drain was requested; the queue loop hands the task off and exits."""


class ChaosFailure(RuntimeError):
    """A fault injected by :class:`ChaosConfig` (never a real error)."""


# ---------------------------------------------------------------------------
# Atomic JSON file primitives (shared with the queue protocol).
# ---------------------------------------------------------------------------


def write_json_exclusive(path: Path, payload: dict) -> bool:
    """Atomically create ``path`` with ``payload`` iff it does not exist.

    The portable full-content ``O_CREAT|O_EXCL``: the payload is written
    to a private temp file first and *linked* into place, so a reader
    can never observe a partially written file.  Returns ``False`` when
    the path already exists (someone else won the race).
    """
    tmp = path.with_name(f".{path.name}.{os.getpid()}.tmp")
    tmp.write_text(json.dumps(payload, sort_keys=True))
    try:
        os.link(tmp, path)
    except FileExistsError:
        return False
    finally:
        tmp.unlink(missing_ok=True)
    return True


def replace_json(path: Path, payload: dict) -> None:
    """Atomic full rewrite (same temp + ``os.replace`` recipe as caches)."""
    tmp = path.with_name(f".{path.name}.{os.getpid()}.tmp")
    tmp.write_text(json.dumps(payload, sort_keys=True))
    os.replace(tmp, path)


def read_json(path: Path) -> dict | None:
    """Parse a protocol file; ``None`` when missing or unreadable."""
    try:
        payload = json.loads(path.read_text())
    except (OSError, ValueError):
        return None
    return payload if isinstance(payload, dict) else None


# ---------------------------------------------------------------------------
# Retry policy.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class RetryPolicy:
    """Deterministic capped exponential backoff for task retries.

    ``backoff_delay`` is a pure function of ``(seed, task index,
    attempt)``: the jitter comes from a seeded per-attempt draw, not the
    wall clock, so two runs of the same fleet schedule retries
    identically and the invariant tests can assert exact delays.
    """

    max_attempts: int = DEFAULT_MAX_ATTEMPTS
    backoff_base: float = 2.0
    """Delay before the first retry, doubled per subsequent attempt."""
    backoff_cap: float = 60.0
    """Upper bound on the pre-jitter delay, however many attempts."""
    jitter: float = 0.25
    """Max jitter as a fraction of the delay (spreads thundering herds)."""
    seed: int = 0
    sleep: Callable[[float], None] = field(default=time.sleep, repr=False)

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.backoff_base < 0 or self.backoff_cap < 0:
            raise ValueError("backoff_base and backoff_cap must be >= 0")
        if not 0 <= self.jitter <= 1:
            raise ValueError(f"jitter must be in [0, 1], got {self.jitter}")

    def backoff_delay(self, index: int, attempt: int) -> float:
        """Seconds before attempt ``attempt + 1`` of task ``index`` may run."""
        base = min(self.backoff_cap, self.backoff_base * (2.0 ** max(0, attempt - 1)))
        draw = random.Random(f"{self.seed}:{int(index)}:{int(attempt)}").random()
        return base * (1.0 + self.jitter * draw)


@dataclass(frozen=True)
class ResilienceConfig:
    """One bundle of supervision knobs, threaded from the CLI down to
    :func:`repro.engine.queue.run_queued_tasks`.

    ``watchdog_multiplier`` and ``watchdog_floor`` price the per-task
    deadline from the cost model (``multiplier ×`` predicted phase
    seconds, never below the floor; a cold cache prices every cell at
    the floor).  ``watchdog_multiplier=0`` disables deadlines entirely.
    """

    max_attempts: int = DEFAULT_MAX_ATTEMPTS
    backoff_base: float = 2.0
    backoff_cap: float = 60.0
    jitter: float = 0.25
    seed: int = 0
    watchdog_multiplier: float = 8.0
    watchdog_floor: float = 600.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.watchdog_multiplier < 0:
            raise ValueError("watchdog_multiplier must be >= 0 (0 disables)")
        if self.watchdog_floor < 0:
            raise ValueError("watchdog_floor must be >= 0 seconds")

    def retry_policy(self) -> RetryPolicy:
        return RetryPolicy(
            max_attempts=self.max_attempts,
            backoff_base=self.backoff_base,
            backoff_cap=self.backoff_cap,
            jitter=self.jitter,
            seed=self.seed,
        )


# ---------------------------------------------------------------------------
# Attempt ledger: the durable per-task failure history in a queue directory.
# ---------------------------------------------------------------------------

_ATTEMPT_GLOB = "attempt_*.json"
_QUARANTINE_GLOB = "quarantined_*.json"
_HANDOFF_GLOB = "handoff_*.json"


def _index_of(path: Path, prefix: str) -> int | None:
    stem = path.stem.removeprefix(prefix)
    try:
        return int(stem.split("_", 1)[0])
    except ValueError:
        return None


def attempt_records(directory: str | Path) -> dict[int, list[dict]]:
    """Every ``attempt_<i>_<n>.json`` in a queue directory, grouped by
    task index and sorted by attempt number."""
    directory = Path(directory)
    records: dict[int, list[dict]] = {}
    for path in directory.glob(_ATTEMPT_GLOB):
        index = _index_of(path, "attempt_")
        payload = read_json(path)
        if index is None or payload is None:
            continue
        records.setdefault(index, []).append(payload)
    for history in records.values():
        history.sort(key=lambda record: int(record.get("attempt", 0)))
    return records


def quarantined_indices(directory: str | Path) -> set[int]:
    """Task indices carrying a ``quarantined_<i>.json`` marker."""
    found: set[int] = set()
    for path in Path(directory).glob(_QUARANTINE_GLOB):
        index = _index_of(path, "quarantined_")
        if index is not None:
            found.add(index)
    return found


def handoff_records(directory: str | Path) -> dict[int, dict]:
    """``handoff_<i>.json`` tombstones left by gracefully retired workers."""
    records: dict[int, dict] = {}
    for path in Path(directory).glob(_HANDOFF_GLOB):
        index = _index_of(path, "handoff_")
        payload = read_json(path)
        if index is not None and payload is not None:
            records[index] = payload
    return records


class AttemptLedger:
    """One worker's handle on the attempt/quarantine/handoff records.

    All records live beside the queue's leases and commit markers and
    use the same atomic primitives: attempt records and quarantine
    markers are created *exclusively* (concurrent failers of one task
    get distinct attempt numbers; exactly one worker quarantines it),
    handoff tombstones are plain atomic replaces (only the retiring
    lease owner writes one).
    """

    def __init__(self, directory: str | Path, *,
                 clock: Callable[[], float] = time.time) -> None:
        self.directory = Path(directory)
        self.clock = clock

    # -- paths ---------------------------------------------------------------

    def attempt_path(self, index: int, attempt: int) -> Path:
        return self.directory / f"attempt_{int(index)}_{int(attempt)}.json"

    def quarantine_path(self, index: int) -> Path:
        return self.directory / f"quarantined_{int(index)}.json"

    def handoff_path(self, index: int) -> Path:
        return self.directory / f"handoff_{int(index)}.json"

    # -- attempts ------------------------------------------------------------

    def attempts(self, index: int) -> list[dict]:
        """This task's attempt records, sorted by attempt number."""
        return attempt_records(self.directory).get(int(index), [])

    def attempt_count(self, index: int) -> int:
        return len(self.attempts(index))

    def record_attempt(
        self,
        index: int,
        *,
        worker: str,
        kind: str,
        error: str = "",
        traceback_text: str = "",
        not_before: float | None = None,
    ) -> dict:
        """Durably record one failed attempt; returns the written payload.

        ``kind`` is ``failure`` (run_fn raised), ``timeout`` (watchdog
        abort) or ``corrupt`` (checkpoint failed post-write
        verification).  ``not_before`` is the backoff deadline before
        which no worker should re-claim the task (``None`` on the final
        attempt — the next step is quarantine, not retry).  Attempt
        numbers are allocated by exclusive creation, so concurrent
        failers never collide.
        """
        payload = {
            "task_index": int(index),
            "worker": str(worker),
            "time": self.clock(),
            "kind": str(kind),
            "error": str(error),
            "traceback": str(traceback_text),
            "not_before": None if not_before is None else float(not_before),
        }
        attempt = self.attempt_count(index) + 1
        while True:
            payload["attempt"] = attempt
            if write_json_exclusive(self.attempt_path(index, attempt), payload):
                return payload
            attempt += 1

    def ready(self, index: int, now: float | None = None) -> bool:
        """Whether the task's latest backoff deadline has passed."""
        history = self.attempts(index)
        if not history:
            return True
        not_before = history[-1].get("not_before")
        if not_before is None:
            return True
        return (self.clock() if now is None else now) >= float(not_before)

    # -- quarantine ----------------------------------------------------------

    def quarantine(self, index: int, *, worker: str) -> bool:
        """Mark a task as poisoned, exactly once fleet-wide.

        The marker embeds the full attempt history (with each attempt's
        error and traceback), so the coordinator can diagnose the cell
        without grepping worker logs.  Returns ``True`` iff this worker
        created the marker.
        """
        history = self.attempts(index)
        marker = {
            "task_index": int(index),
            "worker": str(worker),
            "time": self.clock(),
            "attempts": history,
            "error": history[-1].get("error", "") if history else "",
        }
        return write_json_exclusive(self.quarantine_path(index), marker)

    def quarantined_indices(self) -> set[int]:
        return quarantined_indices(self.directory)

    def quarantine_record(self, index: int) -> dict | None:
        return read_json(self.quarantine_path(index))

    # -- handoff -------------------------------------------------------------

    def record_handoff(self, index: int, *, worker: str, signal_name: str) -> dict:
        """Tombstone a gracefully released lease so peers reclaim it now.

        The releasing worker also deletes its lease, so normally peers
        simply claim the freed slot; the tombstone covers the case where
        the release itself failed — the steal path treats a lease whose
        owner has handed off as expired regardless of its heartbeat.
        """
        payload = {
            "task_index": int(index),
            "worker": str(worker),
            "time": self.clock(),
            "signal": str(signal_name),
        }
        replace_json(self.handoff_path(index), payload)
        return payload


# ---------------------------------------------------------------------------
# Hung-task watchdog.
# ---------------------------------------------------------------------------


def _raise_in_thread(ident: int, exc_type: type[BaseException]) -> bool:
    """Inject ``exc_type`` into the thread ``ident`` (CPython only).

    The exception surfaces at the target thread's next bytecode
    boundary — exact enough for the engine's pure-Python compute loops.
    Returns ``False`` (a no-op) when the platform cannot do it.
    """
    if ctypes is None:  # pragma: no cover - exotic platform fallback
        return False
    try:
        result = ctypes.pythonapi.PyThreadState_SetAsyncExc(
            ctypes.c_ulong(ident), ctypes.py_object(exc_type)
        )
    except Exception:  # pragma: no cover - defensive: never break the loop
        return False
    if result > 1:  # pragma: no cover - "should never happen" per CPython docs
        ctypes.pythonapi.PyThreadState_SetAsyncExc(ctypes.c_ulong(ident), None)
        return False
    return result == 1


class Watchdog(threading.Thread):
    """Daemon aborting the armed phase when its deadline passes.

    One phase is watched at a time (a queue worker runs one task or
    stacked group at a time).  Arming records the target thread and an
    absolute deadline; when it blows, :class:`TaskTimeout` is injected
    into that thread and the firing is remembered so ``disarm`` can
    report it.  Fire and disarm contend on one lock, so a phase that
    finished just in time is never shot after the fact.
    """

    def __init__(self, *, clock: Callable[[], float] = time.monotonic,
                 interval: float = 0.05) -> None:
        super().__init__(daemon=True, name="queue-watchdog")
        self._clock = clock
        self._interval = interval
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._watch: tuple[object, int, float] | None = None
        self._fired: set = set()

    def arm(self, key, ident: int, deadline_seconds: float) -> None:
        """Watch thread ``ident``: abort it ``deadline_seconds`` from now."""
        with self._lock:
            self._fired.discard(key)
            self._watch = (key, int(ident), self._clock() + float(deadline_seconds))

    def disarm(self, key) -> bool:
        """Stop watching ``key``; ``True`` iff the deadline already fired."""
        with self._lock:
            fired = key in self._fired
            self._fired.discard(key)
            if self._watch is not None and self._watch[0] == key:
                self._watch = None
            return fired

    def run(self) -> None:
        while not self._stop.wait(self._interval):
            with self._lock:
                if self._watch is None:
                    continue
                key, ident, deadline = self._watch
                if self._clock() < deadline:
                    continue
                self._watch = None
                self._fired.add(key)
                _raise_in_thread(ident, TaskTimeout)

    def stop(self) -> None:
        self._stop.set()


# ---------------------------------------------------------------------------
# Graceful retirement.
# ---------------------------------------------------------------------------


class DrainGuard:
    """SIGTERM/SIGINT → drain instead of die (queue workers only).

    The first signal requests a drain: if the worker is inside a task
    (the ``task_region`` context), :class:`WorkerRetired` is raised
    there so the phase aborts and the task is handed off; otherwise the
    flag alone makes the scheduling loop exit at its next round.  A
    second signal gives up waiting and raises ``KeyboardInterrupt``.

    Handlers are only installed from the main thread (CPython forbids
    anything else); a worker hosted in a helper thread simply runs
    unguarded, exactly like today.
    """

    SIGNALS = ("SIGTERM", "SIGINT")

    def __init__(self, enabled: bool = True) -> None:
        self.requested = False
        self.signal_name: str | None = None
        self._in_task = False
        self._previous: dict[int, object] = {}
        self._enabled = enabled

    def install(self) -> "DrainGuard":
        if not self._enabled:
            return self
        if threading.current_thread() is not threading.main_thread():
            return self
        for name in self.SIGNALS:
            signum = getattr(signal, name, None)
            if signum is None:  # pragma: no cover - platform without the signal
                continue
            try:
                self._previous[signum] = signal.signal(signum, self._handle)
            except (ValueError, OSError):  # pragma: no cover - embedded interp
                continue
        return self

    def uninstall(self) -> None:
        for signum, previous in self._previous.items():
            try:
                signal.signal(signum, previous)
            except (ValueError, OSError):  # pragma: no cover
                continue
        self._previous.clear()

    @contextmanager
    def task_region(self):
        """Mark the interruptible span: only here does a drain signal
        abort the work in place (never mid-commit)."""
        self._in_task = True
        try:
            yield
        finally:
            self._in_task = False

    def _handle(self, signum, frame) -> None:
        name = signal.Signals(signum).name
        if self.requested:
            raise KeyboardInterrupt(f"second {name} during drain")
        self.requested = True
        self.signal_name = name
        if self._in_task:
            raise WorkerRetired(name)


# ---------------------------------------------------------------------------
# Chaos: seeded fault injection for the fleet harness.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ChaosConfig:
    """Deterministic fault injection, configured via environment.

    * ``REPRO_CHAOS_FAIL_RATE`` — probability that a task's *first*
      attempt raises :class:`ChaosFailure`.  First-attempt-only makes
      every injected crash transient by construction, so chaos alone can
      never quarantine a task (CI's chaos leg gates on zero
      quarantines).
    * ``REPRO_CHAOS_CORRUPT_RATE`` — probability that a task's first
      checkpoint write is truncated post-write; the commit path's
      read-back verification must catch it and convert it into a retry.
    * ``REPRO_CHAOS_POISON_TASKS`` — comma-separated task indices that
      fail on *every* attempt: the poison-task path, driving retries
      into quarantine.
    * ``REPRO_CHAOS_SEED`` — the seed behind both rate draws; per-task
      draws are pure functions of ``(seed, task index)``, identical in
      every worker, so which tasks fail is reproducible fleet-wide.
    """

    fail_rate: float = 0.0
    corrupt_rate: float = 0.0
    poison: frozenset[int] = frozenset()
    seed: int = 0

    @classmethod
    def from_env(cls, environ=None) -> "ChaosConfig":
        environ = os.environ if environ is None else environ

        def rate(name: str) -> float:
            try:
                return min(1.0, max(0.0, float(environ.get(name, "") or 0.0)))
            except ValueError:
                return 0.0

        poison: set[int] = set()
        for token in str(environ.get(CHAOS_POISON_ENV, "")).split(","):
            token = token.strip()
            if token:
                try:
                    poison.add(int(token))
                except ValueError:
                    continue
        try:
            seed = int(environ.get(CHAOS_SEED_ENV, "") or 0)
        except ValueError:
            seed = 0
        return cls(
            fail_rate=rate(CHAOS_FAIL_RATE_ENV),
            corrupt_rate=rate(CHAOS_CORRUPT_RATE_ENV),
            poison=frozenset(poison),
            seed=seed,
        )

    @property
    def enabled(self) -> bool:
        return bool(self.fail_rate or self.corrupt_rate or self.poison)

    def _draw(self, kind: str, index: int) -> float:
        return random.Random(f"{self.seed}:{kind}:{int(index)}").random()

    def should_fail(self, index: int, attempt: int) -> bool:
        if int(index) in self.poison:
            return True
        if self.fail_rate <= 0 or attempt != 1:
            return False
        return self._draw("fail", index) < self.fail_rate

    def maybe_fail(self, index: int, attempt: int) -> None:
        if self.should_fail(index, attempt):
            kind = "poisoned" if int(index) in self.poison else "transient"
            raise ChaosFailure(
                f"injected {kind} failure (task {index}, attempt {attempt})"
            )

    def should_corrupt(self, index: int, attempt: int) -> bool:
        if self.corrupt_rate <= 0 or attempt != 1:
            return False
        return self._draw("corrupt", index) < self.corrupt_rate

    def maybe_corrupt(self, path: Path, index: int, attempt: int) -> bool:
        """Truncate a just-written checkpoint (first attempt only)."""
        if not self.should_corrupt(index, attempt):
            return False
        try:
            data = path.read_bytes()
            path.write_bytes(data[: max(1, len(data) // 2)])
        except OSError:
            return False
        return True
