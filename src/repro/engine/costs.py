"""Cost-ordered scheduling: run the longest tasks first.

Grid cells and sweep variants have wildly skewed costs (cell wall time is
roughly linear in the time window ``T``), so dispatching them in declared
grid order strands wall-clock at the end of a schedule: a worker — or a
variant stack — picks up a ``T=64`` cell last and everyone else idles.
Longest-first ordering is the classic LPT bound for this.

The cost model is empirical where possible: completed checkpoints in a
cache directory record per-cell ``elapsed_seconds``/``phase_seconds``, so
a resumed or re-swept run orders by *measured* cost.  Tasks with no
history fall back to a seconds-per-timestep rate estimated from whatever
history exists, and to plain ``T``-descending when the directory is cold
— the documented fallback, since cost is dominated by the time loop.

Execution order never changes results: every task carries its own derived
seeds and the scheduler returns results in declared task order, so
reordering here only moves wall-clock, never science.
"""

from __future__ import annotations

import json
from collections.abc import Sequence
from pathlib import Path

from repro.engine.cache import scan_cache_dir

__all__ = [
    "cached_cell_costs",
    "cached_sweep_costs",
    "cell_cost_estimator",
    "cell_deadline_estimator",
    "order_cell_tasks",
    "order_sweep_tasks",
    "sweep_deadline_estimator",
]


def _checkpoint_cost(path: Path, value_key: str) -> tuple[dict, float] | None:
    """``(task_payload, seconds)`` recorded in one result checkpoint."""
    try:
        payload = json.loads(path.read_text())
        task = payload.get("task")
        value = payload.get(value_key)
        if not isinstance(task, dict) or not isinstance(value, dict):
            return None
        elapsed = float(value.get("elapsed_seconds", 0.0))
        if elapsed <= 0.0:
            phases = value.get("phase_seconds")
            if isinstance(phases, dict):
                elapsed = float(sum(float(v) for v in phases.values()))
        if elapsed <= 0.0:
            return None
        return task, elapsed
    except (OSError, TypeError, ValueError):
        return None


def cached_cell_costs(directory: str | Path) -> dict[tuple[float, int], float]:
    """Measured seconds per ``(v_th, time_window)`` from cell checkpoints.

    Entries from any fingerprint count — a cost model does not need the
    exact same config, just the same hardware-and-architecture regime.
    Newer checkpoints win when several record the same combination.
    """
    costs: dict[tuple[float, int], float] = {}
    entries = [e for e in scan_cache_dir(directory) if e.kind == "cell"]
    for entry in sorted(entries, key=lambda e: e.modified):
        record = _checkpoint_cost(entry.path, "cell")
        if record is None:
            continue
        task, elapsed = record
        try:
            key = (float(task["v_th"]), int(task["time_window"]))
        except (KeyError, TypeError, ValueError):
            continue
        costs[key] = elapsed
    return costs


def cached_sweep_costs(directory: str | Path) -> dict[str, float]:
    """Measured seconds per variant ``key`` from sweep checkpoints."""
    costs: dict[str, float] = {}
    entries = [e for e in scan_cache_dir(directory) if e.kind == "sweep"]
    for entry in sorted(entries, key=lambda e: e.modified):
        record = _checkpoint_cost(entry.path, "result")
        if record is None:
            continue
        task, elapsed = record
        key = task.get("key")
        if isinstance(key, str):
            costs[key] = elapsed
    return costs


def cell_cost_estimator(costs: dict[tuple[float, int], float]):
    """``task -> estimated seconds`` from measured costs.

    A task with history costs what it cost; one without is priced at the
    median seconds-per-timestep of the history times its own ``T``; with
    no history at all the estimate is ``T`` itself (pure ``T``-descending
    ordering).
    """
    rates = sorted(
        seconds / steps for (_v, steps), seconds in costs.items() if steps > 0
    )
    rate = rates[len(rates) // 2] if rates else None

    def estimate(task) -> float:
        known = costs.get((float(task.v_th), int(task.time_window)))
        if known is not None:
            return known
        steps = int(task.time_window)
        return rate * steps if rate is not None else float(steps)

    return estimate


def cell_deadline_estimator(
    costs: dict[tuple[float, int], float] | None,
    *,
    multiplier: float = 8.0,
    floor: float = 600.0,
):
    """``task -> watchdog deadline seconds``, or ``None`` when disabled.

    The hung-task watchdog prices a phase's abort deadline from the same
    empirical cost model that orders the claims: ``multiplier ×`` the
    predicted phase seconds, never below ``floor``.  A cold cache has no
    *seconds* prediction (the ordering fallback is unitless ``T``), so
    every cell is priced at the floor alone — generous beats shooting a
    healthy first epoch.  ``multiplier <= 0`` disables the watchdog.
    """
    if multiplier <= 0:
        return None
    costs = costs or {}
    estimate = cell_cost_estimator(costs) if costs else None

    def deadline(task) -> float:
        if estimate is None:
            return float(floor)
        return max(float(floor), float(multiplier) * float(estimate(task)))

    return deadline


def sweep_deadline_estimator(
    costs: dict[str, float] | None,
    *,
    multiplier: float = 8.0,
    floor: float = 600.0,
):
    """Sweep-variant sibling of :func:`cell_deadline_estimator`: measured
    seconds for the variant's ``key`` scale by ``multiplier``, unmeasured
    variants get the ``floor``; ``multiplier <= 0`` disables."""
    if multiplier <= 0:
        return None
    costs = costs or {}

    def deadline(task) -> float:
        known = costs.get(task.key)
        if known is None:
            return float(floor)
        return max(float(floor), float(multiplier) * float(known))

    return deadline


def order_cell_tasks(
    tasks: Sequence, costs: dict[tuple[float, int], float] | None
) -> list:
    """Grid-cell tasks, most expensive first (deterministic tie-break)."""
    estimate = cell_cost_estimator(costs or {})
    return sorted(tasks, key=lambda task: (-estimate(task), task.index))


def _sweep_time_steps(task) -> int:
    for name, value in getattr(task, "params", ()):
        if name in ("time_steps", "time_window", "T"):
            try:
                return int(value)
            except (TypeError, ValueError):
                return 0
    return 0


def order_sweep_tasks(tasks: Sequence, costs: dict[str, float] | None) -> list:
    """Sweep tasks, most expensive first.

    Fallback for unmeasured variants is their ``time_steps`` build
    parameter (0 when absent), then declared order.
    """
    costs = costs or {}

    def estimate(task) -> float:
        known = costs.get(task.key)
        if known is not None:
            return known
        return float(_sweep_time_steps(task))

    return sorted(tasks, key=lambda task: (-estimate(task), task.index))
