"""Guided grid search: successive halving with warm-started training.

Algorithm 1 sweeps the ``(Vth, T)`` grid exhaustively — every cell gets
the full training budget, including the dominated regions the heat maps
exist to rule out.  This module replaces the sweep with a *successive
halving* scheduler: every cell first trains on a small epoch budget
(rung 0), the rung's results are ranked with the existing
attacked-accuracy metrics, and only the top ``1/eta`` fraction is
promoted to the next, larger budget — repeated until the final rung
trains the surviving cells at the full budget.  Dominated cells are
pruned after spending a fraction of an exhaustive run's train time.

Two performance layers ride on the engine:

* **warm-start** — before each promotion rung, a neighbour index over the
  earlier rungs' :class:`~repro.engine.cache.WeightCache` archives
  (:func:`~repro.engine.cache.nearest_weight_entry`) assigns every
  candidate an initialisation source: its own lower-budget checkpoint
  when one exists (distance 0), else the structurally nearest trained
  neighbour.  The cell then resumes training for the *remaining* epochs
  instead of restarting (:class:`~repro.engine.job.WarmStartRef`).
  Weight archives bundle the Adam moments
  (:func:`~repro.engine.cache.split_optimizer_arrays`), so resuming a
  cell from its *own* lower-budget checkpoint is a bitwise continuation
  of the interrupted run; only neighbour-initialised training (or a
  legacy archive without bundled moments) is a genuine approximation.
  A **bias gate** audits the shortcut either way: after rung 0, the top
  probe cell is trained to the full budget twice — warm from its rung-0
  checkpoint and cold from scratch — and if the final metrics diverge
  beyond tolerance, warm-start is disabled for the remaining rungs.

* **budget-aware execution** — rung tasks are ordinary
  :class:`~repro.engine.job.CellTask` s, so they inherit checkpoint
  caching, ``--jobs`` pools, ``--stack`` fused passes, the work-stealing
  ``--queue`` and cost-ordered dispatch unchanged.  Every rung caches
  under a *budget-qualified* fingerprint (the rung's epoch budget and
  the content of its warm-start plan are part of the cache identity), so
  a resumed search replays completed rungs from checkpoints and a
  ``--no-warm-start`` run can never collide with a warm one.

Determinism contract (the property the parity tests assert): given the
same seed and the same cache state, rung composition, promotions and the
final sweet spot are identical whether a rung executes serially, on a
worker pool, stacked, or across a work-stealing fleet.  The warm-start
plan is the linchpin — it is computed *only* from caches frozen before
the rung starts (earlier rungs are complete by construction), never from
state that changes while a rung is in flight.
"""

from __future__ import annotations

import hashlib
import json
import math
import time
from collections.abc import Callable, Mapping
from dataclasses import dataclass, field, replace
from pathlib import Path

from repro.engine.cache import (
    CellCache,
    WeightCache,
    context_fingerprint,
    nearest_weight_entry,
    training_fingerprint,
)
from repro.engine.costs import cached_cell_costs, order_cell_tasks
from repro.engine.metrics import (
    flush_metrics,
    record_search_promotion,
    record_search_rung,
    record_search_warm_start,
)
from repro.engine.job import (
    CellTask,
    ExplorationJobContext,
    WarmStartRef,
    build_cell_tasks,
    run_cell_task,
)
from repro.engine.queue import DEFAULT_LEASE_TTL, run_queued_tasks
from repro.engine.scheduler import run_cell_tasks
from repro.engine.stacking import run_stacked_cell_tasks
from repro.errors import ExplorationError
from repro.robustness.results import CellResult, ExplorationResult
from repro.utils.logging import get_logger

__all__ = [
    "RungReport",
    "SearchConfig",
    "SearchResult",
    "derive_schedule",
    "parse_budget_schedule",
    "run_halving_search",
]

_logger = get_logger("engine.search")


@dataclass(frozen=True)
class SearchConfig:
    """Settings of one successive-halving search."""

    schedule: tuple[int, ...]
    """Ascending epoch budgets, one per rung; the last must equal the
    full training budget so surviving cells end up trained exactly like
    an exhaustive run's."""

    eta: float = 2.0
    """Halving factor: each promotion keeps ``ceil(n / eta)`` cells."""

    epsilon: float | None = None
    """Attack budget cells are ranked at (``None`` = the largest ε of the
    exploration config — the hardest budget the grid evaluates)."""

    warm_start: bool = True
    """Initialise promoted/adjacent cells from the nearest cached archive
    instead of cold init (subject to the bias gate)."""

    bias_tolerance: float = 0.1
    """Maximum warm-vs-cold divergence (absolute difference over clean
    accuracy and every robustness point) the bias gate accepts before
    disabling warm-start for the remaining rungs."""

    def validate(self, full_epochs: int) -> None:
        """Raise ``ValueError`` on inconsistent settings."""
        if not self.schedule:
            raise ValueError("budget schedule must name at least one rung")
        if any(int(b) < 1 for b in self.schedule):
            raise ValueError(f"rung budgets must be >= 1, got {self.schedule}")
        if list(self.schedule) != sorted(set(self.schedule)):
            raise ValueError(
                f"budget schedule must be strictly increasing, got {self.schedule}"
            )
        if int(self.schedule[-1]) != int(full_epochs):
            raise ValueError(
                f"final rung budget {self.schedule[-1]} must equal the full "
                f"training budget ({full_epochs} epochs); otherwise the "
                f"surviving cells are not comparable to an exhaustive run"
            )
        if self.eta <= 1.0:
            raise ValueError(f"eta must be > 1, got {self.eta}")
        if self.bias_tolerance < 0.0:
            raise ValueError(
                f"bias_tolerance must be >= 0, got {self.bias_tolerance}"
            )


def derive_schedule(full_epochs: int, rungs: int = 3) -> tuple[int, ...]:
    """Default geometric budget schedule ending at the full budget.

    Each rung doubles the previous budget (``full/4 -> full/2 -> full``
    for three rungs), collapsing duplicates for tiny budgets::

        derive_schedule(8)  == (2, 4, 8)
        derive_schedule(2)  == (1, 2)
        derive_schedule(1)  == (1,)
    """
    if full_epochs < 1:
        raise ValueError(f"full_epochs must be >= 1, got {full_epochs}")
    if rungs < 1:
        raise ValueError(f"rungs must be >= 1, got {rungs}")
    budgets: list[int] = []
    for level in reversed(range(rungs)):
        budget = max(1, int(full_epochs) // (2**level))
        if not budgets or budget > budgets[-1]:
            budgets.append(budget)
    return tuple(budgets)


def parse_budget_schedule(text: str) -> tuple[int, ...]:
    """Parse a CLI ``--budget-schedule`` value (``"1,2,6"``)."""
    try:
        budgets = tuple(int(part) for part in str(text).split(",") if part.strip())
    except ValueError as error:
        raise ValueError(
            f"budget schedule must be comma-separated integers, got {text!r}"
        ) from error
    if not budgets:
        raise ValueError(f"budget schedule must name at least one rung, got {text!r}")
    return budgets


# -- reports -------------------------------------------------------------------


@dataclass(frozen=True)
class RungReport:
    """What one rung evaluated, promoted and pruned."""

    rung: int
    budget: int
    """Epoch budget every cell of this rung was trained to."""

    cells: tuple[CellResult, ...]
    """Results of this rung's candidates, in grid task order."""

    survivors: tuple[tuple[float, int], ...]
    """``(v_th, time_window)`` promoted to the next rung, best first
    (empty for the final rung — nothing left to promote into)."""

    pruned: tuple[tuple[float, int], ...]
    """``(v_th, time_window)`` eliminated at this rung, best first."""

    warm_started: int = 0
    """How many of this rung's cells resumed from a cached archive."""

    train_seconds: float = 0.0
    """Summed training wall-clock recorded by this rung's cells (the
    train-task-seconds the CI gate and BENCH compare against exhaustive;
    checkpointed cells report the cost of the run that computed them)."""

    engine: dict = field(default_factory=dict)
    """Scheduler accounting (volatile provenance, like everywhere else)."""

    def as_dict(self) -> dict:
        """JSON-friendly representation."""
        return {
            "rung": self.rung,
            "budget": self.budget,
            "cells": [cell.as_dict() for cell in self.cells],
            "survivors": [list(pair) for pair in self.survivors],
            "pruned": [list(pair) for pair in self.pruned],
            "warm_started": self.warm_started,
            "train_seconds": self.train_seconds,
            "engine": dict(self.engine),
        }

    @staticmethod
    def from_dict(payload: dict) -> "RungReport":
        """Inverse of :meth:`as_dict`."""
        return RungReport(
            rung=int(payload["rung"]),
            budget=int(payload["budget"]),
            cells=tuple(CellResult.from_dict(c) for c in payload["cells"]),
            survivors=tuple(
                (float(v), int(t)) for v, t in payload.get("survivors", [])
            ),
            pruned=tuple((float(v), int(t)) for v, t in payload.get("pruned", [])),
            warm_started=int(payload.get("warm_started", 0)),
            train_seconds=float(payload.get("train_seconds", 0.0)),
            engine=dict(payload.get("engine", {})),
        )


@dataclass
class SearchResult:
    """Everything one guided search decided, found and spent."""

    scheduler: str
    schedule: tuple[int, ...]
    eta: float
    epsilon: float
    """Attack budget the ranking (and the sweet spot) used."""

    warm_start: bool
    """Whether warm-start was requested."""

    warm_start_active: bool
    """Whether it was still active after the bias gate."""

    bias_tolerance: float
    v_thresholds: tuple[float, ...]
    time_windows: tuple[int, ...]
    rungs: tuple[RungReport, ...]
    bias_gate: dict | None = None
    """The warm-vs-cold micro study's record (probe cell, both legs'
    metrics, divergence, verdict); ``None`` when it never ran."""

    metadata: dict = field(default_factory=dict)
    train_seconds_total: float = 0.0
    """Training seconds actually spent: all rungs plus the bias study."""

    exhaustive_estimate_seconds: float = 0.0
    """What a full-budget exhaustive sweep would have cost, priced at the
    observed per-(epoch × timestep) training rate.  Provenance."""

    elapsed_seconds: float = 0.0

    @property
    def final_cells(self) -> tuple[CellResult, ...]:
        """The last rung's results — the full-budget survivors."""
        return self.rungs[-1].cells if self.rungs else ()

    def exploration(self) -> ExplorationResult:
        """The surviving cells as a (sparse) :class:`ExplorationResult`.

        Pruned cells are absent (NaN in the heat maps) — the point of the
        search is that they were never trained to the full budget.
        """
        return ExplorationResult(
            v_thresholds=self.v_thresholds,
            time_windows=self.time_windows,
            cells=list(self.final_cells),
            metadata={**self.metadata, "search": self.scheduler},
        )

    def sweet_spot(self) -> CellResult | None:
        """Top-1 surviving cell by the paper's sweet-spot rule.

        Same ranking as :func:`repro.robustness.selection.select_sweet_spots`
        at :attr:`epsilon` — robustness first, clean accuracy as the tie
        break.  ``None`` when no learnable cell survived.
        """
        candidates = [
            cell
            for cell in self.final_cells
            if cell.learnable and self.epsilon in cell.robustness
        ]
        if not candidates:
            return None
        return max(
            candidates,
            key=lambda cell: (cell.robustness[self.epsilon], cell.clean_accuracy),
        )

    def render(self) -> str:
        """Multi-line human-readable search report (rung table included)."""
        warm_label = (
            "on"
            if self.warm_start_active
            else ("disabled by bias gate" if self.warm_start else "off")
        )
        lines = [
            f"Guided search (successive halving): budgets "
            f"{'->'.join(str(b) for b in self.schedule)} epochs, "
            f"eta={self.eta:g}, rank eps={self.epsilon:g}, warm-start {warm_label}"
        ]
        for rung in self.rungs:
            line = (
                f"  rung {rung.rung}: budget {rung.budget}, "
                f"{len(rung.cells)} cells ({rung.warm_started} warm), "
                f"train {rung.train_seconds:.1f}s"
            )
            if rung.survivors:
                line += f" -> promoted {len(rung.survivors)}, pruned {len(rung.pruned)}"
            lines.append(line)
        if self.bias_gate is not None:
            gate = self.bias_gate
            probe = gate.get("probe", {})
            lines.append(
                f"  bias gate: probe (Vth={probe.get('v_th', 0):g}, "
                f"T={probe.get('time_window', 0)}) divergence "
                f"{gate.get('divergence', 0.0):.3f} vs tolerance "
                f"{gate.get('tolerance', 0.0):g} -> "
                + ("warm-start kept" if gate.get("passed") else "warm-start disabled")
            )
        spot = self.sweet_spot()
        if spot is not None:
            lines.append(
                f"  sweet spot: (Vth={spot.v_th:g}, T={spot.time_window}) "
                f"clean={spot.clean_accuracy * 100:.1f}%, "
                f"robustness@eps={self.epsilon:g}="
                f"{spot.robustness[self.epsilon] * 100:.1f}%"
            )
        else:
            lines.append("  sweet spot: none (no learnable cell survived)")
        if self.train_seconds_total > 0 and self.exhaustive_estimate_seconds > 0:
            saved = self.exhaustive_estimate_seconds / self.train_seconds_total
            lines.append(
                f"  train seconds: {self.train_seconds_total:.1f} spent vs "
                f"~{self.exhaustive_estimate_seconds:.1f} exhaustive estimate "
                f"({saved:.1f}x)"
            )
        return "\n".join(lines)

    def to_json(self, path: str | Path | None = None) -> str:
        """Serialise; optionally also write to ``path``."""
        spot = self.sweet_spot()
        payload = {
            "search": {
                "scheduler": self.scheduler,
                "schedule": list(self.schedule),
                "eta": self.eta,
                "epsilon": self.epsilon,
                "warm_start": self.warm_start,
                "warm_start_active": self.warm_start_active,
                "bias_tolerance": self.bias_tolerance,
            },
            "v_thresholds": list(self.v_thresholds),
            "time_windows": list(self.time_windows),
            "metadata": self.metadata,
            "rungs": [rung.as_dict() for rung in self.rungs],
            "bias_gate": self.bias_gate,
            "sweet_spot": None
            if spot is None
            else {
                "v_th": spot.v_th,
                "time_window": spot.time_window,
                "clean_accuracy": spot.clean_accuracy,
                "robustness": spot.robustness[self.epsilon],
                "epsilon": self.epsilon,
            },
            "timing": {
                "train_seconds_total": self.train_seconds_total,
                "exhaustive_estimate_seconds": self.exhaustive_estimate_seconds,
                "elapsed_seconds": self.elapsed_seconds,
            },
        }
        text = json.dumps(payload, indent=2, sort_keys=True)
        if path is not None:
            path = Path(path)
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(text)
        return text

    @staticmethod
    def from_json(source: str | Path) -> "SearchResult":
        """Load a result written by :meth:`to_json` (path or JSON text)."""
        if isinstance(source, Path) or (
            isinstance(source, str) and not source.lstrip().startswith("{")
        ):
            text = Path(source).read_text()
        else:
            text = source
        payload = json.loads(text)
        search = payload["search"]
        timing = payload.get("timing", {})
        return SearchResult(
            scheduler=str(search["scheduler"]),
            schedule=tuple(int(b) for b in search["schedule"]),
            eta=float(search["eta"]),
            epsilon=float(search["epsilon"]),
            warm_start=bool(search["warm_start"]),
            warm_start_active=bool(search["warm_start_active"]),
            bias_tolerance=float(search["bias_tolerance"]),
            v_thresholds=tuple(float(v) for v in payload["v_thresholds"]),
            time_windows=tuple(int(t) for t in payload["time_windows"]),
            rungs=tuple(RungReport.from_dict(r) for r in payload["rungs"]),
            bias_gate=payload.get("bias_gate"),
            metadata=dict(payload.get("metadata", {})),
            train_seconds_total=float(timing.get("train_seconds_total", 0.0)),
            exhaustive_estimate_seconds=float(
                timing.get("exhaustive_estimate_seconds", 0.0)
            ),
            elapsed_seconds=float(timing.get("elapsed_seconds", 0.0)),
        )


# -- ranking and planning ------------------------------------------------------


def _rank_key(task: CellTask, cell: CellResult, epsilon: float):
    """Sort key ordering (task, result) pairs best-first, deterministically.

    Learnable cells outrank gated ones; among learnable, the paper's
    sweet-spot rule applies (robustness at the target ε, then clean
    accuracy); grid index is the final tie break so equal-metric runs
    promote the same cells in every execution mode.
    """
    return (
        0 if cell.learnable else 1,
        -cell.robustness.get(epsilon, -1.0),
        -cell.clean_accuracy,
        task.index,
    )


def _build_warm_plan(
    tasks: list[CellTask],
    sources: list[tuple[int, WeightCache]],
    budget: int,
) -> dict[int, WarmStartRef]:
    """Freeze the rung's warm-start assignment from earlier-rung caches.

    ``sources`` holds the weight caches of the rungs already completed —
    frozen state, identical for every worker — so the plan is a pure
    function of (tasks, cache state) and the determinism contract holds
    even when a fleet races through the rung.  Per task: the cell's own
    highest-budget checkpoint wins (distance 0); otherwise the
    structurally nearest neighbour archive.  Only strictly smaller source
    budgets qualify — resuming *past* the rung's budget would leave no
    epochs to train here.
    """
    entries = []
    for source_budget, cache in sources:
        if int(source_budget) >= int(budget):
            continue
        entries.extend(cache.scan())
    if not entries:
        return {}
    plan: dict[int, WarmStartRef] = {}
    for task in tasks:
        own = [
            entry
            for entry in entries
            if entry.key == task.weight_key and entry.train_seed == task.cell_seed
        ]
        if own:
            best = max(own, key=lambda entry: (entry.epochs or 0, entry.path.name))
            plan[task.index] = WarmStartRef(
                path=str(best.path),
                source_key=best.key,
                source_epochs=int(best.epochs or 0),
                distance=0.0,
            )
            continue
        found = nearest_weight_entry(entries, task.params)
        if found is None:
            continue
        entry, distance = found
        plan[task.index] = WarmStartRef(
            path=str(entry.path),
            source_key=entry.key,
            source_epochs=int(entry.epochs or 0),
            distance=float(distance),
        )
    return plan


def _plan_tag(plan: dict[int, WarmStartRef] | None) -> str:
    """Cache-identity tag of a warm-start plan.

    Warm-started training produces different weights than cold training,
    so rung checkpoints must never be shared across different plans —
    the plan's content (who resumes from which archive) is hashed into
    the rung's fingerprint tags.  The empty plan is the literal ``cold``,
    which keeps ``--no-warm-start`` runs readable in ``cache stats``.
    """
    if not plan:
        return "cold"
    payload = {
        str(index): [ref.source_key, int(ref.source_epochs), Path(ref.path).name]
        for index, ref in plan.items()
    }
    text = json.dumps(payload, sort_keys=True)
    return hashlib.sha256(text.encode()).hexdigest()[:12]


# -- the bias gate -------------------------------------------------------------


def _bias_study(
    context: ExplorationJobContext,
    probe_task: CellTask,
    probe_ref: WarmStartRef,
    tolerance: float,
) -> dict:
    """Warm-vs-cold micro study on one probe cell (the ROADMAP concern).

    Trains the probe to the *full* budget twice — resuming from its
    rung-0 checkpoint and cold from scratch — and reports the largest
    absolute metric difference (clean accuracy and every robustness
    point).  Differing learnability verdicts count as total divergence:
    a warm-start that flips the gate is exactly the bias being screened
    for.  Runs uncached and unarchived; both legs are deterministic, so
    redundant re-runs (every queue worker performs its own audit) agree
    bitwise.
    """
    warm_context = replace(
        context,
        weight_cache=None,
        reuse_weights=False,
        warm_start={probe_task.index: probe_ref},
    )
    cold_context = replace(
        context, weight_cache=None, reuse_weights=False, warm_start=None
    )
    warm = run_cell_task(warm_context, probe_task)
    cold = run_cell_task(cold_context, probe_task)
    if warm.learnable != cold.learnable:
        divergence = 1.0
    else:
        differences = [abs(warm.clean_accuracy - cold.clean_accuracy)]
        for eps in sorted(set(warm.robustness) | set(cold.robustness)):
            differences.append(
                abs(warm.robustness.get(eps, 0.0) - cold.robustness.get(eps, 0.0))
            )
        divergence = max(differences)

    def leg(cell: CellResult) -> dict:
        return {
            "clean_accuracy": cell.clean_accuracy,
            "learnable": cell.learnable,
            "robustness": {repr(k): v for k, v in sorted(cell.robustness.items())},
        }

    return {
        "probe": {"v_th": probe_task.v_th, "time_window": probe_task.time_window},
        "source_epochs": int(probe_ref.source_epochs),
        "warm": leg(warm),
        "cold": leg(cold),
        "divergence": divergence,
        "tolerance": float(tolerance),
        "passed": bool(divergence <= tolerance),
        "train_seconds": warm.phase_seconds.get("train_s", 0.0)
        + cold.phase_seconds.get("train_s", 0.0),
    }


def _select_probe(
    pairs: list[tuple[CellTask, CellResult]],
    weight_cache: WeightCache,
    epsilon: float,
) -> tuple[CellTask, Path] | None:
    """The bias gate's probe: the best rung-0 cell with an archived state."""
    for task, cell in sorted(pairs, key=lambda p: _rank_key(p[0], p[1], epsilon)):
        if cell.diverged:
            continue
        path = weight_cache.path_for(task.weight_key, task.cell_seed)
        if path.is_file():
            return task, path
    return None


# -- execution -----------------------------------------------------------------


def _run_rung(
    context: ExplorationJobContext,
    tasks: list[CellTask],
    cell_cache: CellCache,
    cache_dir: str | Path,
    *,
    jobs: int,
    stack: int,
    start_method: str,
    resume: bool,
    queue_dir: Path | None,
    lease_ttl: float,
    experiment: str,
    progress: Callable | None,
):
    """Serve one rung's candidates through the requested execution mode.

    Plain engine dispatch — rung tasks are ordinary cell tasks.  In queue
    mode, :func:`run_queued_tasks` returns once *every* candidate has a
    commit marker (whichever worker computed it), after which the results
    are read back from the shared checkpoint cache so all workers leave
    the rung holding the identical result list.
    """
    costs = cached_cell_costs(cache_dir)

    def order(pending: list) -> list:
        return order_cell_tasks(pending, costs)

    if queue_dir is not None:
        _queue_result, stats = run_queued_tasks(
            context,
            tasks,
            run_cell_task,
            cell_cache,
            queue_dir,
            experiment=experiment,
            cache_dir=cache_dir,
            resume=resume,
            progress=progress,
            lease_ttl=lease_ttl,
            pending_order=order,
            stack=stack,
        )
        if _queue_result.quarantined:
            # A promotion decision needs every candidate's score; a
            # quarantined cell means the rung is unmeasurable, so fail
            # loudly instead of silently pruning the poisoned cell.
            raise ExplorationError(
                f"queue rung quarantined task(s) "
                f"{list(_queue_result.quarantined)} after exhausting their "
                "attempt budget; the halving promotion cannot be decided "
                "without every candidate"
            )
        results = [cell_cache.get(task) for task in tasks]
        missing = [task.index for task, cell in zip(tasks, results) if cell is None]
        if missing:
            raise ExplorationError(
                f"queue rung committed every task but {len(missing)} "
                f"checkpoint(s) are unreadable (indices {missing[:8]}); "
                f"the shared cache directory may have been pruned mid-run"
            )
        return results, stats
    if stack > 1:
        return run_stacked_cell_tasks(
            context,
            tasks,
            stack=stack,
            cache=cell_cache,
            resume=resume,
            progress=progress,
        )
    return run_cell_tasks(
        context,
        tasks,
        jobs=jobs,
        cache=cell_cache,
        resume=resume,
        progress=progress,
        start_method=start_method,
        context_spec=None,
        pending_order=order,
    )


def _exhaustive_estimate(
    rungs: list[RungReport], tasks: list[CellTask], full_epochs: int
) -> float:
    """Price an exhaustive full-budget sweep at the observed train rate.

    The rate is the median seconds per (epoch × timestep) across every
    non-diverged cell the search actually trained (warm-started cells
    contribute their *trained* epochs, not the skipped ones), applied to
    the whole grid at the full budget.  Provenance, not science — the CI
    gate compares measured seconds against a real exhaustive run instead.
    """
    rates: list[float] = []
    for rung in rungs:
        for cell in rung.cells:
            if cell.diverged:
                continue
            train_s = float(cell.phase_seconds.get("train_s", 0.0))
            if train_s <= 0.0:
                continue
            start = int((cell.warm_start or {}).get("start_epoch", 0))
            epochs = max(1, rung.budget - start)
            rates.append(train_s / (epochs * max(1, cell.time_window)))
    if not rates:
        return 0.0
    rates.sort()
    rate = rates[len(rates) // 2]
    grid_steps = sum(max(1, task.time_window) for task in tasks)
    return rate * int(full_epochs) * grid_steps


def run_halving_search(
    context: ExplorationJobContext,
    search: SearchConfig,
    cache_dir: str | Path,
    *,
    tags: Mapping[str, object] | None = None,
    jobs: int = 1,
    stack: int = 1,
    start_method: str = "auto",
    resume: bool = False,
    queue_dir: str | Path | None = None,
    lease_ttl: float = DEFAULT_LEASE_TTL,
    experiment: str = "grid",
    progress: Callable | None = None,
) -> SearchResult:
    """Run a successive-halving search over the context's grid.

    ``context`` is the *full-budget* exploration setup (its training
    config's ``epochs`` is the final rung's budget); per rung, the driver
    derives a budget-qualified copy, freezes the warm-start plan from the
    earlier rungs' weight caches, executes the candidates through the
    ordinary engine (``jobs``/``stack``/``queue_dir`` exactly as the
    exhaustive grid accepts them), ranks the results and promotes the
    top ``1/eta`` fraction.  Returns the full :class:`SearchResult` in
    every mode — queue workers block per rung until the fleet completes
    it, then read the shared cache, so each worker independently derives
    the identical promotions and final report.

    ``cache_dir`` is mandatory: rung checkpoints are the promotion
    transport and the weight archives are the warm-start substrate.
    ``tags`` must carry the same experiment identity tags the exhaustive
    grid would use, so search caches live alongside (but, via the
    ``search``/``budget``/``warm_plan`` tags, never collide with)
    exhaustive ones.  Static ``--shard`` partitioning is unsupported by
    design — promotions need *every* cell of a rung, which is what the
    dynamic queue provides across hosts.
    """
    start = time.perf_counter()
    if cache_dir is None:
        raise ValueError(
            "guided search requires a cache directory: rung checkpoints are "
            "the promotion transport and weight archives the warm-start source"
        )
    config = context.config
    full_epochs = int(config.training.epochs)
    search.validate(full_epochs)
    epsilon = float(
        search.epsilon if search.epsilon is not None else max(config.epsilons)
    )
    base_tags = {str(k): v for k, v in (tags or {}).items()}
    tasks = build_cell_tasks(config)
    candidates = list(tasks)
    sources: list[tuple[int, WeightCache]] = []
    rungs: list[RungReport] = []
    bias_gate: dict | None = None
    warm_requested = bool(search.warm_start)
    warm_active = warm_requested
    for rung_index, budget in enumerate(search.schedule):
        budget = int(budget)
        rung_training = replace(config.training, epochs=budget)
        rung_config = replace(config, training=rung_training)
        plan: dict[int, WarmStartRef] = {}
        if warm_active and rung_index > 0:
            plan = _build_warm_plan(candidates, sources, budget)
        rung_tags = {
            **base_tags,
            "search": "halving",
            "budget": budget,
            "warm_plan": _plan_tag(plan),
        }
        weight_cache = WeightCache(
            cache_dir,
            training_fingerprint(
                context.train_set,
                rung_training,
                eval_sets=(context.test_set,),
                tags=rung_tags,
            ),
        )
        rung_context = replace(
            context,
            config=rung_config,
            weight_cache=weight_cache,
            reuse_weights=resume,
            warm_start=plan or None,
        )
        cell_cache = CellCache(
            cache_dir, context_fingerprint(rung_context, tags=rung_tags)
        )
        _logger.info(
            "rung %d/%d: budget %d epoch(s), %d candidate(s), %d warm-started",
            rung_index + 1,
            len(search.schedule),
            budget,
            len(candidates),
            len(plan),
        )
        results, stats = _run_rung(
            rung_context,
            candidates,
            cell_cache,
            cache_dir,
            jobs=jobs,
            stack=stack,
            start_method=start_method,
            resume=resume,
            queue_dir=None if queue_dir is None else Path(queue_dir) / f"rung{rung_index}",
            lease_ttl=lease_ttl,
            experiment=f"{experiment}-search",
            progress=progress,
        )
        pairs = list(zip(candidates, results))
        if rung_index == 0 and warm_active and len(search.schedule) > 1:
            probe = _select_probe(pairs, weight_cache, epsilon)
            if probe is not None:
                probe_task, probe_path = probe
                bias_gate = _bias_study(
                    context,
                    probe_task,
                    WarmStartRef(
                        path=str(probe_path),
                        source_key=probe_task.weight_key,
                        source_epochs=budget,
                        distance=0.0,
                    ),
                    search.bias_tolerance,
                )
                if not bias_gate["passed"]:
                    warm_active = False
                    _logger.warning(
                        "bias gate failed (divergence %.3f > tolerance %g); "
                        "warm-start disabled for the remaining rungs",
                        bias_gate["divergence"],
                        search.bias_tolerance,
                    )
        survivors: tuple[tuple[float, int], ...] = ()
        pruned: tuple[tuple[float, int], ...] = ()
        if rung_index < len(search.schedule) - 1:
            keep = max(1, math.ceil(len(pairs) / search.eta))
            ranked = sorted(pairs, key=lambda p: _rank_key(p[0], p[1], epsilon))
            survivors = tuple(
                (task.v_th, task.time_window) for task, _ in ranked[:keep]
            )
            pruned = tuple(
                (task.v_th, task.time_window) for task, _ in ranked[keep:]
            )
            candidates = sorted(
                (task for task, _ in ranked[:keep]), key=lambda t: t.index
            )
        rungs.append(
            RungReport(
                rung=rung_index,
                budget=budget,
                cells=tuple(cell for _, cell in pairs),
                survivors=survivors,
                pruned=pruned,
                warm_started=sum(1 for _, cell in pairs if cell.warm_start),
                train_seconds=sum(
                    float(cell.phase_seconds.get("train_s", 0.0))
                    for _, cell in pairs
                ),
                engine=stats.as_dict() if stats is not None else {},
            )
        )
        record_search_rung()
        record_search_promotion("promoted", len(survivors))
        record_search_promotion("pruned", len(pruned))
        for _, cell in pairs:
            if cell.warm_start:
                # distance 0.0 means the cell resumed its *own* lower-budget
                # archive (a bitwise continuation); anything else came from
                # the nearest-neighbour index.
                source = (
                    "self"
                    if float(cell.warm_start.get("distance", 1.0)) == 0.0
                    else "neighbor"
                )
                record_search_warm_start(source)
        sources.append((budget, weight_cache))
    train_total = sum(rung.train_seconds for rung in rungs)
    if bias_gate is not None:
        train_total += float(bias_gate.get("train_seconds", 0.0))
    flush_metrics()
    return SearchResult(
        scheduler="halving",
        schedule=tuple(int(b) for b in search.schedule),
        eta=float(search.eta),
        epsilon=epsilon,
        warm_start=warm_requested,
        warm_start_active=warm_active,
        bias_tolerance=float(search.bias_tolerance),
        v_thresholds=config.v_thresholds,
        time_windows=config.time_windows,
        rungs=tuple(rungs),
        bias_gate=bias_gate,
        metadata={},
        train_seconds_total=train_total,
        exhaustive_estimate_seconds=_exhaustive_estimate(rungs, tasks, full_epochs),
        elapsed_seconds=time.perf_counter() - start,
    )
