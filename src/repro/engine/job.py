"""The original unit of work of the engine: one grid cell.

A :class:`CellTask` is a tiny, picklable description of one ``(Vth, T)``
combination — its grid position plus the child seeds derived from the
experiment root seed.  :func:`run_cell_task` is the *pure* job function
(Algorithm 1, lines 3-16, for a single cell): given a task and an
:class:`ExplorationJobContext` it trains, gates and attacks one model and
returns a :class:`~repro.robustness.results.CellResult`.

Example — evaluating one cell by hand::

    tasks = build_cell_tasks(config)            # deterministic seeds
    cell = run_cell_task(context, tasks[0])     # train + gate + attack
    cell.robustness[1.0]                        # robustness at eps=1

Because seeds are derived in the task (not from execution order), the
same task produces bitwise-identical results whether it runs serially,
in a worker process, or in a different position of the grid sweep — the
property the parallel scheduler and the resumable cache both rely on.
The sibling module :mod:`repro.engine.sweep` applies the same recipe to
trained-variant ε-sweeps (Fig. 9, ablations).
"""

from __future__ import annotations

import time
import zipfile
from collections.abc import Callable
from dataclasses import dataclass, replace
from multiprocessing import current_process
from pathlib import Path
from typing import TYPE_CHECKING

import numpy as np

from repro.data.dataset import ArrayDataset
from repro.engine.cache import archive_weights, split_optimizer_arrays
from repro.nn.module import Module
from repro.robustness.config import ExplorationConfig
from repro.robustness.learnability import train_and_score
from repro.robustness.results import CellResult
from repro.robustness.security import robustness_curve
from repro.utils.logging import get_logger
from repro.utils.seeding import SeedSequence
from repro.utils.serialization import load_npz

if TYPE_CHECKING:  # avoids a runtime cycle: engine.cache imports this module
    from repro.engine.cache import WeightCache

__all__ = [
    "CellTask",
    "ExplorationJobContext",
    "WarmStartRef",
    "build_cell_tasks",
    "make_cell_task",
    "run_cell_task",
]

_logger = get_logger("engine")

ModelFactory = Callable[[float, int, int], Module]
"""``(v_th, time_window, seed) -> model`` builder used per grid cell."""


@dataclass(frozen=True)
class CellTask:
    """Identity and derived seeds of one grid cell (picklable, tiny).

    Example::

        CellTask(index=0, v_th=1.0, time_window=48,
                 cell_seed=1234, attack_seed=5678)
    """

    index: int
    """Position in the declared grid order (row-major over thresholds)."""

    v_th: float
    """Firing threshold of this cell."""

    time_window: int
    """Time window of this cell."""

    cell_seed: int
    """Seed for model initialisation and training shuffling."""

    attack_seed: int
    """Seed for attack randomness (PGD random starts, noise draws)."""

    @property
    def weight_key(self) -> str:
        """Weight-cache key of this cell's trained model."""
        return f"cell_vth{self.v_th:g}_T{self.time_window}"

    @property
    def params(self) -> dict[str, float]:
        """Structural parameters of this cell, as archived in weight
        metadata and fed to the neighbour index."""
        return {"v_th": float(self.v_th), "time_window": float(self.time_window)}


@dataclass(frozen=True)
class WarmStartRef:
    """Pointer to a cached archive a cell should initialise from (picklable).

    Produced by the search scheduler's per-rung warm-start plan — always
    from caches *frozen before the rung starts*, so every worker derives
    the identical plan — and consumed by :func:`run_cell_task`, which
    loads the archive, skips ``source_epochs`` of the shuffle stream and
    trains only the remaining budget.
    """

    path: str
    """Absolute path of the source ``.npz`` archive."""

    source_key: str
    """Weight-cache key the source was stored under."""

    source_epochs: int
    """Training budget the source archive completed (the resume point)."""

    distance: float
    """Normalised structural-parameter distance to this cell (``0.0`` when
    resuming the cell's own lower-budget checkpoint)."""


@dataclass
class ExplorationJobContext:
    """Everything a worker needs to evaluate any cell of one exploration.

    Shipped to worker processes once per pool (via fork inheritance), so
    datasets are not re-pickled per task; spawn workers rebuild it from a
    :class:`~repro.engine.scheduler.ContextSpec` instead.
    """

    model_factory: ModelFactory
    """``(v_th, time_window, seed) -> fresh untrained model``."""

    train_set: ArrayDataset
    """Training data for Algorithm 1's Train() step."""

    test_set: ArrayDataset
    """Samples scored for clean accuracy and attacked during the sweep."""

    config: ExplorationConfig
    """Grid, gate, attack and training settings."""

    weight_cache: "WeightCache | None" = None
    """Optional store for trained cell parameters; always written when set."""

    reuse_weights: bool = False
    """Load cached weights instead of retraining (``--resume`` semantics:
    caches are written eagerly but reused only on request)."""

    warm_start: "dict[int, WarmStartRef] | None" = None
    """Per-task warm-start plan (``task.index -> WarmStartRef``), frozen
    before execution starts.  Cells without an entry — and cells whose
    source archive turns out unreadable — train cold."""


def make_cell_task(
    seeds: SeedSequence, index: int, v_th: float, time_window: int
) -> CellTask:
    """The single place a cell's seeds are derived from its identity.

    Child seeds are keyed by the *raw* ``(v_th, time_window)`` values,
    matching the historical serial explorer exactly, so results remain
    reproducible against pre-engine runs.
    """
    return CellTask(
        index=index,
        v_th=float(v_th),
        time_window=int(time_window),
        cell_seed=seeds.child_seed("cell", v_th, time_window),
        attack_seed=seeds.child_seed("attack", v_th, time_window),
    )


def build_cell_tasks(config: ExplorationConfig) -> list[CellTask]:
    """Expand a config into the full, deterministically-seeded task list.

    Example::

        tasks = build_cell_tasks(ExplorationConfig(seed=7))
        len(tasks) == len(config.v_thresholds) * len(config.time_windows)
    """
    seeds = SeedSequence(config.seed)
    tasks: list[CellTask] = []
    for v_th in config.v_thresholds:
        for time_window in config.time_windows:
            tasks.append(make_cell_task(seeds, len(tasks), v_th, time_window))
    return tasks


def _load_warm_state(
    ref: WarmStartRef,
) -> tuple[dict[str, np.ndarray], dict[str, np.ndarray] | None] | None:
    """``(state_dict, optimizer_state)`` of a warm-start source archive.

    A vanished or corrupt source degrades to a cold start (``None``)
    rather than failing the cell — the plan is advisory, the result stays
    correct either way (only the provenance field records what actually
    happened).  The optimizer half is ``None`` for archives that predate
    optimizer bundling; those resume as a re-anneal with fresh moments.
    """
    try:
        arrays, _ = load_npz(ref.path)
    except (OSError, ValueError, KeyError, zipfile.BadZipFile):
        _logger.warning(
            "warm-start source %s unreadable; cell trains cold", ref.path
        )
        return None
    return split_optimizer_arrays(arrays)


def run_cell_task(context: ExplorationJobContext, task: CellTask) -> CellResult:
    """Run learnability + security analysis for one grid cell (pure).

    With a weight cache attached and ``reuse_weights`` set, a cached
    ``state_dict`` replaces training entirely: the stored clean accuracy
    is re-gated against the (possibly changed) accuracy threshold and
    only the security sweep is recomputed — the path that makes
    "new ε list, same grid" runs cheap.

    With a warm-start plan naming this task, training initialises from
    the referenced archive and runs only the remaining epochs past the
    source's completed budget (``start_epoch`` resume); the provenance
    lands in :attr:`CellResult.warm_start` and in the archived metadata.
    """
    start = time.perf_counter()
    phase_seconds: dict[str, float] = {}
    config = context.config
    model = context.model_factory(task.v_th, task.time_window, task.cell_seed)
    cached = None
    if context.weight_cache is not None and context.reuse_weights:
        cached = context.weight_cache.get(task.weight_key, task.cell_seed)
    warm_start: dict | None = None
    if cached is not None:
        state, metadata = cached
        model.load_state_dict(state)
        clean_accuracy = float(metadata["clean_accuracy"])
        diverged = False
        learnable = clean_accuracy >= config.accuracy_threshold
        raw_warm = metadata.get("warm_start")
        warm_start = dict(raw_warm) if isinstance(raw_warm, dict) else None
    else:
        training = replace(config.training, seed=task.cell_seed & 0x7FFFFFFF)
        ref = (context.warm_start or {}).get(task.index)
        loaded = _load_warm_state(ref) if ref is not None else None
        initial_state, initial_optimizer_state = loaded if loaded else (None, None)
        start_epoch = 0
        if initial_state is not None:
            # Resume past the source's completed budget, but always train
            # at least one epoch here — a cell promoted onto an equal or
            # larger source budget still owes the gate fresh training.
            start_epoch = min(int(ref.source_epochs), max(training.epochs - 1, 0))
            warm_start = {
                "source_file": Path(ref.path).name,
                "source_key": ref.source_key,
                "source_epochs": int(ref.source_epochs),
                "start_epoch": start_epoch,
                "distance": float(ref.distance),
            }
        learn = train_and_score(
            model,
            context.train_set,
            context.test_set,
            training,
            config.accuracy_threshold,
            initial_state=initial_state,
            start_epoch=start_epoch,
            initial_optimizer_state=initial_optimizer_state,
        )
        clean_accuracy = learn.clean_accuracy
        diverged = learn.diverged
        learnable = learn.learnable
        if not diverged:
            # Diverged weights are useless for re-sweeps; don't archive them.
            metadata = {
                "clean_accuracy": clean_accuracy,
                "params": task.params,
                "epochs": training.epochs,
            }
            if warm_start is not None:
                metadata["warm_start"] = warm_start
            archive_weights(
                context.weight_cache,
                task.weight_key,
                task.cell_seed,
                model.state_dict(),
                metadata,
                optimizer_state=learn.optimizer_state,
            )
    # train_and_score folds training and the clean-accuracy gate into one
    # call, so the cell-level breakdown reports them as one train phase.
    phase_seconds["train_s"] = time.perf_counter() - start
    robustness: dict[float, float] = {}
    if learnable:
        attack_start = time.perf_counter()
        curve = robustness_curve(
            model,
            context.test_set,
            config.epsilons,
            lambda eps: config.build_attack(eps, seed=task.attack_seed),
            label=f"(Vth={task.v_th:g}, T={task.time_window})",
            batch_size=config.attack_batch_size,
        )
        robustness = dict(zip(curve.epsilons, curve.robustness))
        phase_seconds["attack_s"] = time.perf_counter() - attack_start
    return CellResult(
        v_th=task.v_th,
        time_window=task.time_window,
        clean_accuracy=clean_accuracy,
        learnable=learnable,
        diverged=diverged,
        robustness=robustness,
        elapsed_seconds=time.perf_counter() - start,
        phase_seconds=phase_seconds,
        worker=current_process().name,
        warm_start=warm_start,
    )
