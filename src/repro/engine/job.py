"""The unit of work of the exploration engine: one grid cell.

A :class:`CellTask` is a tiny, picklable description of one ``(Vth, T)``
combination — its grid position plus the child seeds derived from the
experiment root seed.  :func:`run_cell_task` is the *pure* job function
(Algorithm 1, lines 3-16, for a single cell): given a task and an
:class:`ExplorationJobContext` it trains, gates and attacks one model and
returns a :class:`~repro.robustness.results.CellResult`.

Because seeds are derived in the task (not from execution order), the
same task produces bitwise-identical results whether it runs serially,
in a worker process, or in a different position of the grid sweep — the
property the parallel scheduler and the resumable cache both rely on.
"""

from __future__ import annotations

import time
from collections.abc import Callable
from dataclasses import dataclass, replace
from multiprocessing import current_process

from repro.data.dataset import ArrayDataset
from repro.nn.module import Module
from repro.robustness.config import ExplorationConfig
from repro.robustness.learnability import train_and_score
from repro.robustness.results import CellResult
from repro.robustness.security import robustness_curve
from repro.utils.seeding import SeedSequence

__all__ = [
    "CellTask",
    "ExplorationJobContext",
    "build_cell_tasks",
    "make_cell_task",
    "run_cell_task",
]

ModelFactory = Callable[[float, int, int], Module]
"""``(v_th, time_window, seed) -> model`` builder used per grid cell."""


@dataclass(frozen=True)
class CellTask:
    """Identity and derived seeds of one grid cell (picklable, tiny)."""

    index: int
    """Position in the declared grid order (row-major over thresholds)."""

    v_th: float
    """Firing threshold of this cell."""

    time_window: int
    """Time window of this cell."""

    cell_seed: int
    """Seed for model initialisation and training shuffling."""

    attack_seed: int
    """Seed for attack randomness (PGD random starts, noise draws)."""


@dataclass
class ExplorationJobContext:
    """Everything a worker needs to evaluate any cell of one exploration.

    Shipped to worker processes once per pool (via fork inheritance), so
    datasets are not re-pickled per task.
    """

    model_factory: ModelFactory
    train_set: ArrayDataset
    test_set: ArrayDataset
    config: ExplorationConfig


def make_cell_task(
    seeds: SeedSequence, index: int, v_th: float, time_window: int
) -> CellTask:
    """The single place a cell's seeds are derived from its identity.

    Child seeds are keyed by the *raw* ``(v_th, time_window)`` values,
    matching the historical serial explorer exactly, so results remain
    reproducible against pre-engine runs.
    """
    return CellTask(
        index=index,
        v_th=float(v_th),
        time_window=int(time_window),
        cell_seed=seeds.child_seed("cell", v_th, time_window),
        attack_seed=seeds.child_seed("attack", v_th, time_window),
    )


def build_cell_tasks(config: ExplorationConfig) -> list[CellTask]:
    """Expand a config into the full, deterministically-seeded task list."""
    seeds = SeedSequence(config.seed)
    tasks: list[CellTask] = []
    for v_th in config.v_thresholds:
        for time_window in config.time_windows:
            tasks.append(make_cell_task(seeds, len(tasks), v_th, time_window))
    return tasks


def run_cell_task(context: ExplorationJobContext, task: CellTask) -> CellResult:
    """Run learnability + security analysis for one grid cell (pure)."""
    start = time.perf_counter()
    config = context.config
    model = context.model_factory(task.v_th, task.time_window, task.cell_seed)
    training = replace(config.training, seed=task.cell_seed & 0x7FFFFFFF)
    learn = train_and_score(
        model,
        context.train_set,
        context.test_set,
        training,
        config.accuracy_threshold,
    )
    robustness: dict[float, float] = {}
    if learn.learnable:
        curve = robustness_curve(
            model,
            context.test_set,
            config.epsilons,
            lambda eps: config.build_attack(eps, seed=task.attack_seed),
            label=f"(Vth={task.v_th:g}, T={task.time_window})",
            batch_size=config.attack_batch_size,
        )
        robustness = dict(zip(curve.epsilons, curve.robustness))
    return CellResult(
        v_th=task.v_th,
        time_window=task.time_window,
        clean_accuracy=learn.clean_accuracy,
        learnable=learn.learnable,
        diverged=learn.diverged,
        robustness=robustness,
        elapsed_seconds=time.perf_counter() - start,
        worker=current_process().name,
    )
