"""The second job family of the engine: trained-variant ε-sweeps.

Where :mod:`repro.engine.job` evaluates one ``(Vth, T)`` *grid cell*, this
module evaluates one *trained variant*: build a model from a picklable
parameter spec, train it (or load cached weights), then sweep one or more
attack families over a list of noise budgets ε.  The Figure-9 sweet-spot
study and the whole ablation suite are expressed as lists of
:class:`SweepTask`, so they parallelize, checkpoint and resume through the
same scheduler and cache layers as the grid.

Example — one task describing the paper's high-robustness sweet spot::

    task = SweepTask(
        index=0,
        key="snn_vth1_T48",
        kind="fig9_snn",
        params=(("time_window", 48), ("v_th", 1.0)),
        attacks=("pgd",),
        epsilons=(0.0, 0.5, 1.0),
        train_seed=123,
        attack_seed=456,
    )
    result = run_sweep_task(context, task)
    result.curves["pgd"][1.0]   # robustness at eps=1

Like cell tasks, every sweep task carries its own derived seeds, so the
same task produces identical results serially, on a fork pool, or in a
spawned worker that rebuilt the context from a
:class:`~repro.engine.scheduler.ContextSpec`.
"""

from __future__ import annotations

import time
from collections.abc import Callable
from dataclasses import dataclass, field, replace
from multiprocessing import current_process
from typing import TYPE_CHECKING

from repro.attacks.metrics import evaluate_attack_sweep, evaluate_clean_accuracy
from repro.data.dataset import ArrayDataset
from repro.nn.module import Module
from repro.robustness.config import make_attack
from repro.training.trainer import Trainer, TrainingConfig
from repro.utils.seeding import SeedSequence

if TYPE_CHECKING:  # avoids a runtime cycle: engine.cache imports this module
    from repro.engine.cache import WeightCache

__all__ = [
    "SweepJobContext",
    "SweepResult",
    "SweepTask",
    "make_sweep_task",
    "run_sweep_task",
]

ModelBuilder = Callable[["SweepTask"], Module]
"""``task -> fresh untrained model`` dispatcher used per sweep variant."""


@dataclass(frozen=True)
class SweepTask:
    """Identity, build parameters and derived seeds of one variant (picklable).

    ``params`` is a sorted tuple of ``(name, value)`` pairs rather than a
    dict so tasks stay hashable and their cache-key material is stable.
    """

    index: int
    """Position in the declared task order."""

    key: str
    """Stable variant identifier, e.g. ``"cnn"`` or ``"surrogate:arctan"``.
    Doubles as the weight-cache key, so it must be unique per context."""

    kind: str
    """Builder dispatch tag (e.g. ``"fig9_cnn"``, ``"ablation"``)."""

    params: tuple[tuple[str, object], ...] = ()
    """Variant build parameters as sorted ``(name, value)`` pairs."""

    attacks: tuple[str, ...] = ("pgd",)
    """Attack families swept against the trained model."""

    epsilons: tuple[float, ...] = ()
    """Noise budgets evaluated for every attack family."""

    train_seed: int = 0
    """Seed for model initialisation and training shuffling."""

    attack_seed: int = 0
    """Seed for attack randomness (PGD random starts, noise draws)."""

    def param(self, name: str, default: object = None) -> object:
        """Look up one build parameter by name."""
        for param_name, value in self.params:
            if param_name == name:
                return value
        return default


@dataclass
class SweepJobContext:
    """Everything a worker needs to evaluate any task of one sweep.

    Shipped to fork workers via inheritance, or rebuilt inside spawn
    workers from a :class:`~repro.engine.scheduler.ContextSpec` (the
    ``model_builder`` closure is why the context itself is not pickled).
    """

    model_builder: ModelBuilder
    """``task -> fresh untrained model`` (typically a profile closure)."""

    train_set: ArrayDataset
    """Training data for the Train() step."""

    clean_eval_set: ArrayDataset
    """Samples scored for the variant's clean accuracy."""

    attack_set: ArrayDataset
    """Samples attacked during the ε sweep (usually a test subset)."""

    training: TrainingConfig
    """Training hyper-parameters; the per-task seed overrides its seed."""

    attack_steps: int = 10
    """Iterations of the (iterative) attacks."""

    clip_min: float = 0.0
    """Lower bound of the valid pixel box."""

    clip_max: float = 1.0
    """Upper bound of the valid pixel box."""

    attack_batch_size: int = 32
    """Batch size used while crafting adversarial examples."""

    weight_cache: "WeightCache | None" = None
    """Optional store for trained parameters; always written when set."""

    reuse_weights: bool = False
    """Load cached weights instead of retraining (the ``--resume``
    semantics: caches are written eagerly but reused only on request)."""

    attack_prep: Callable[[Module, "SweepTask"], None] | None = None
    """Optional hook invoked on the trained model right before the attack
    sweep.  Variants with *stateful* stochastic components (e.g. a Poisson
    encoder whose rng advanced during training) reset them here from the
    task's attack seed, so the sweep draws identically whether the model
    was just trained or loaded from the weight cache."""


@dataclass(frozen=True)
class SweepResult:
    """Clean accuracy and per-attack robustness curves of one variant."""

    key: str
    """The :attr:`SweepTask.key` this result belongs to."""

    clean_accuracy: float
    """Accuracy on ``clean_eval_set`` after training."""

    curves: dict[str, dict[float, float]] = field(default_factory=dict)
    """``attack -> {epsilon -> robustness}`` for every swept family."""

    weights_from_cache: bool = field(default=False, compare=False)
    """Whether training was skipped by a weight-cache hit.

    Excluded from equality so a weight-cached re-run compares equal to
    the run that trained from scratch.
    """

    elapsed_seconds: float = field(default=0.0, compare=False)
    """Wall-clock time spent on this task (train/load + attacks)."""

    phase_seconds: dict[str, float] = field(default_factory=dict, compare=False)
    """Breakdown of :attr:`elapsed_seconds`: ``train_s`` (training or the
    cache load replacing it), ``eval_s`` (clean-accuracy pass) and
    ``attack_s`` (the ε sweeps).  Provenance, excluded from equality."""

    worker: str = field(default="", compare=False)
    """Process name that evaluated the task."""

    def curve(self, attack: str = "pgd") -> dict[float, float]:
        """The ``epsilon -> robustness`` mapping of one attack family."""
        return self.curves[attack]

    def as_dict(self) -> dict:
        """JSON-friendly representation (epsilon keys stringified)."""
        return {
            "key": self.key,
            "clean_accuracy": self.clean_accuracy,
            "curves": {
                attack: {repr(eps): value for eps, value in curve.items()}
                for attack, curve in self.curves.items()
            },
            "weights_from_cache": self.weights_from_cache,
            "elapsed_seconds": self.elapsed_seconds,
            "phase_seconds": dict(self.phase_seconds),
            "worker": self.worker,
        }

    @staticmethod
    def from_dict(payload: dict) -> "SweepResult":
        """Inverse of :meth:`as_dict`."""
        return SweepResult(
            key=str(payload["key"]),
            clean_accuracy=float(payload["clean_accuracy"]),
            curves={
                str(attack): {float(k): float(v) for k, v in curve.items()}
                for attack, curve in payload["curves"].items()
            },
            weights_from_cache=bool(payload.get("weights_from_cache", False)),
            elapsed_seconds=float(payload.get("elapsed_seconds", 0.0)),
            phase_seconds={
                str(k): float(v)
                for k, v in payload.get("phase_seconds", {}).items()
            },
            worker=str(payload.get("worker", "")),
        )


def make_sweep_task(
    seeds: SeedSequence,
    index: int,
    key: str,
    kind: str,
    params: tuple[tuple[str, object], ...] = (),
    attacks: tuple[str, ...] = ("pgd",),
    epsilons: tuple[float, ...] = (),
) -> SweepTask:
    """Derive a task's seeds from its identity (the single place).

    Seeds are keyed by ``(kind, key)`` — not by the attack or ε lists — so
    a security-only re-sweep (new ε list, new attack families) addresses
    the *same* trained weights in the weight cache.
    """
    return SweepTask(
        index=index,
        key=str(key),
        kind=str(kind),
        params=tuple(params),
        attacks=tuple(attacks),
        epsilons=tuple(float(e) for e in epsilons),
        train_seed=seeds.child_seed("sweep", kind, key),
        attack_seed=seeds.child_seed("sweep", kind, key, "attack"),
    )


def run_sweep_task(context: SweepJobContext, task: SweepTask) -> SweepResult:
    """Train (or load) one variant and sweep its attacks (pure).

    With a weight cache attached and ``reuse_weights`` set, a cached
    ``state_dict`` replaces the Train() step entirely — the stored clean
    accuracy rides along in the archive metadata, so only the attack
    sweep is recomputed.
    """
    start = time.perf_counter()
    phase_seconds: dict[str, float] = {}
    model = context.model_builder(task)
    cached = None
    if context.weight_cache is not None and context.reuse_weights:
        cached = context.weight_cache.get(task.key, task.train_seed)
    if cached is not None:
        state, metadata = cached
        model.load_state_dict(state)
        clean_accuracy = float(metadata["clean_accuracy"])
        weights_from_cache = True
        phase_seconds["train_s"] = time.perf_counter() - start
    else:
        training = replace(context.training, seed=task.train_seed & 0x7FFFFFFF)
        Trainer(model, training).fit(context.train_set)
        phase_seconds["train_s"] = time.perf_counter() - start
        eval_start = time.perf_counter()
        clean_accuracy = evaluate_clean_accuracy(model, context.clean_eval_set)
        phase_seconds["eval_s"] = time.perf_counter() - eval_start
        weights_from_cache = False
        # Imported lazily: repro.engine.cache imports SweepResult from here.
        from repro.engine.cache import archive_weights

        archive_weights(
            context.weight_cache,
            task.key,
            task.train_seed,
            model.state_dict(),
            {"clean_accuracy": clean_accuracy, "kind": task.kind},
        )
    if context.attack_prep is not None:
        context.attack_prep(model, task)
    attack_start = time.perf_counter()
    curves: dict[str, dict[float, float]] = {}
    for attack_name in task.attacks:
        # One ε-shared sweep per family: clean predictions and (for
        # single-step attacks) the white-box gradient are computed once
        # and reused at every budget — identical numbers, fewer passes.
        def build_attack(epsilon: float, name: str = attack_name):
            return make_attack(
                name,
                epsilon,
                steps=context.attack_steps,
                seed=task.attack_seed,
                clip_min=context.clip_min,
                clip_max=context.clip_max,
            )

        evaluations = evaluate_attack_sweep(
            model,
            build_attack,
            task.epsilons,
            context.attack_set,
            batch_size=context.attack_batch_size,
        )
        curves[attack_name] = {
            float(epsilon): evaluation.robustness
            for epsilon, evaluation in zip(task.epsilons, evaluations)
        }
    phase_seconds["attack_s"] = time.perf_counter() - attack_start
    return SweepResult(
        key=task.key,
        clean_accuracy=clean_accuracy,
        curves=curves,
        weights_from_cache=weights_from_cache,
        elapsed_seconds=time.perf_counter() - start,
        phase_seconds=phase_seconds,
        worker=current_process().name,
    )
