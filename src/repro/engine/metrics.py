"""Process-local metrics registry with Prometheus-style text export.

The engine's only telemetry used to be per-result ``phase_seconds``.
This module generalizes it into an aggregate, fleet-mergeable view:

* :class:`MetricsRegistry` — a thread-safe registry of
  :class:`Counter` / :class:`Gauge` / :class:`Histogram` families,
  each family keyed by a fixed label-name tuple and holding one child
  per label-value combination;
* :meth:`MetricsRegistry.render_text` — the Prometheus text exposition
  format (``# HELP`` / ``# TYPE`` / samples), so any scrape-side
  tooling reads the snapshots unchanged;
* :func:`flush_metrics` — an atomic per-worker snapshot writer
  (``metrics_<worker>.prom`` plus a ``.json`` twin) suitable for the
  multi-worker merge performed by ``cache metrics DIR``;
* :func:`merge_snapshots` — the fleet view: counters and histograms
  sum, gauges take the max (all three are associative and
  commutative, so merge order never matters).

Instrumentation is strictly observational.  The recording helpers
(:func:`record_task`, :func:`record_cache`, :func:`record_queue_event`,
...) are one-line no-ops until :func:`configure_metrics` points the
module at a snapshot directory, and nothing here touches job results —
serial, pool, stacked and queue outputs are byte-identical with
metrics on or off (tested).

Only the standard library is imported: every engine layer (scheduler,
caches, queue, search, stacking) records through this module, so it
must sit below all of them in the import graph.

The metric catalogue (:data:`CATALOG`) is the single source of truth
for names, types, labels and units; ``docs/observability.md`` is
checked against it by ``scripts/check_docs.py``.
"""

from __future__ import annotations

import json
import os
import socket
import threading
from dataclasses import dataclass, field

__all__ = [
    "ATTEMPT_BUCKETS",
    "CATALOG",
    "LATENCY_BUCKETS_MS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "configure_metrics",
    "flush_metrics",
    "get_registry",
    "load_snapshot",
    "merge_snapshots",
    "metrics_dir",
    "metrics_enabled",
    "read_metrics_dir",
    "record_cache",
    "record_queue_event",
    "record_search_promotion",
    "record_search_rung",
    "record_search_warm_start",
    "record_task",
    "record_task_attempts",
    "render_snapshot_text",
    "reset_metrics",
    "set_queue_depth",
    "snapshot_worker_id",
]

SNAPSHOT_VERSION = 1

LATENCY_BUCKETS_MS: tuple[float, ...] = (
    10.0,
    50.0,
    100.0,
    250.0,
    500.0,
    1000.0,
    2500.0,
    5000.0,
    10000.0,
    30000.0,
    60000.0,
    120000.0,
    300000.0,
    600000.0,
)
"""Fixed millisecond buckets for every latency histogram.

Fixed (not adaptive) so that histograms from different workers merge by
plain element-wise addition; the range spans a micro-profile attack
(~tens of ms) to a paper-profile training phase (~minutes).
"""

ATTEMPT_BUCKETS: tuple[float, ...] = (1.0, 2.0, 3.0, 5.0, 8.0)
"""Buckets for the attempts-to-resolution histogram.

A healthy fleet resolves everything in the first bucket (one attempt);
anything beyond the default three-attempt budget only appears when the
operator raised ``--max-attempts``.  Fixed for the same element-wise
mergeability as :data:`LATENCY_BUCKETS_MS`.
"""

CATALOG: tuple[dict, ...] = (
    {
        "name": "repro_tasks_total",
        "type": "counter",
        "help": "Tasks completed by the scheduler, by job kind and how the result was obtained.",
        "labels": {
            "job": ("cell", "sweep", "stacked"),
            "status": ("computed", "cached"),
        },
        "unit": "tasks",
    },
    {
        "name": "repro_task_phase_duration_ms",
        "type": "histogram",
        "help": "Per-task phase wall time from the result's phase_seconds telemetry.",
        "labels": {
            "job": ("cell", "sweep", "stacked"),
            "phase": ("train", "attack", "eval"),
        },
        "unit": "milliseconds",
    },
    {
        "name": "repro_cache_requests_total",
        "type": "counter",
        "help": "Checkpoint and weight-cache operations, by cache kind and outcome.",
        "labels": {
            "cache": ("cell", "sweep", "weights"),
            "op": ("hit", "miss", "put"),
        },
        "unit": "operations",
    },
    {
        "name": "repro_queue_events_total",
        "type": "counter",
        "help": "Work-queue lifecycle events appended to the per-worker event streams.",
        "labels": {
            "event": (
                "claim", "steal", "commit", "cached", "duplicate", "failed",
                "retry", "quarantine", "handoff", "timeout",
                "cache_write_retry",
            ),
        },
        "unit": "events",
    },
    {
        "name": "repro_task_attempts",
        "type": "histogram",
        "help": "Attempts a queue task needed before it resolved — committed, or quarantined with its budget spent.",
        "labels": {"outcome": ("committed", "quarantined")},
        "unit": "attempts",
        "buckets": ATTEMPT_BUCKETS,
    },
    {
        "name": "repro_queue_depth",
        "type": "gauge",
        "help": "Tasks not yet committed in the queue this worker is draining, sampled each scheduling round.",
        "labels": {},
        "unit": "tasks",
    },
    {
        "name": "repro_search_rungs_total",
        "type": "counter",
        "help": "Successive-halving rungs executed.",
        "labels": {},
        "unit": "rungs",
    },
    {
        "name": "repro_search_promotions_total",
        "type": "counter",
        "help": "Per-cell promotion decisions at each non-final rung.",
        "labels": {"outcome": ("promoted", "pruned")},
        "unit": "cells",
    },
    {
        "name": "repro_search_warm_starts_total",
        "type": "counter",
        "help": "Warm-start initialisations of promoted cells, by weight provenance.",
        "labels": {"source": ("self", "neighbor")},
        "unit": "cells",
    },
)
"""Every metric the engine emits: name, type, label names with their
value vocabulary, and unit.  ``docs/observability.md`` documents exactly
this list; ``scripts/check_docs.py`` fails if either side drifts."""


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _format_number(value: float) -> str:
    """Prometheus-style number rendering: integers without a decimal point."""
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _render_labels(labelnames: tuple[str, ...], labelvalues: tuple[str, ...],
                   extra: tuple[tuple[str, str], ...] = ()) -> str:
    pairs = [
        f'{name}="{_escape_label_value(value)}"'
        for name, value in zip(labelnames, labelvalues)
    ]
    pairs.extend(f'{name}="{_escape_label_value(value)}"' for name, value in extra)
    if not pairs:
        return ""
    return "{" + ",".join(pairs) + "}"


class _Child:
    """One label-value combination of a family.  Thread-safe via the
    registry lock shared by every family and child."""

    __slots__ = ("_lock",)

    def __init__(self, lock: threading.RLock):
        self._lock = lock


class Counter(_Child):
    """Monotonically increasing count.  Merge semantics: sum."""

    __slots__ = ("_value",)

    def __init__(self, lock: threading.RLock):
        super().__init__(lock)
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up, got increment {amount}")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Gauge(_Child):
    """Point-in-time value (queue depth).  Merge semantics: max —
    summing the same queue's depth observed by N workers would
    overcount, the fleet-wide maximum is the honest aggregate."""

    __slots__ = ("_value",)

    def __init__(self, lock: threading.RLock):
        super().__init__(lock)
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Histogram(_Child):
    """Cumulative-bucket histogram with fixed boundaries.

    ``observe(v)`` increments every bucket whose upper bound is >= v
    (rendered Prometheus-style with a final ``+Inf`` bucket), plus the
    running sum and count.  Fixed boundaries make the merge a plain
    element-wise addition.
    """

    __slots__ = ("buckets", "_counts", "_sum", "_count")

    def __init__(self, lock: threading.RLock, buckets: tuple[float, ...]):
        super().__init__(lock)
        self.buckets = buckets
        self._counts = [0] * (len(buckets) + 1)  # last slot = +Inf
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        with self._lock:
            self._sum += value
            self._count += 1
            for i, bound in enumerate(self.buckets):
                if value <= bound:
                    self._counts[i] += 1
                    break
            else:
                self._counts[-1] += 1

    @property
    def cumulative_counts(self) -> list[int]:
        """Per-``le`` cumulative counts, Prometheus exposition order."""
        with self._lock:
            total = 0
            out = []
            for count in self._counts:
                total += count
                out.append(total)
            return out

    @property
    def raw_counts(self) -> list[int]:
        """Non-cumulative per-bucket counts (what snapshots store: they
        merge by plain addition, cumulative counts would double-count)."""
        with self._lock:
            return list(self._counts)

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    @property
    def count(self) -> int:
        with self._lock:
            return self._count


_KIND_CLASSES = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


@dataclass
class _Family:
    name: str
    kind: str
    help: str
    labelnames: tuple[str, ...]
    buckets: tuple[float, ...] | None
    lock: threading.RLock
    children: dict[tuple[str, ...], _Child] = field(default_factory=dict)

    def labels(self, **labelvalues: str) -> _Child:
        if set(labelvalues) != set(self.labelnames):
            raise ValueError(
                f"metric {self.name} takes labels {self.labelnames}, "
                f"got {tuple(sorted(labelvalues))}"
            )
        key = tuple(str(labelvalues[name]) for name in self.labelnames)
        with self.lock:
            child = self.children.get(key)
            if child is None:
                if self.kind == "histogram":
                    child = Histogram(self.lock, self.buckets)
                else:
                    child = _KIND_CLASSES[self.kind](self.lock)
                self.children[key] = child
            return child


class MetricsRegistry:
    """Thread-safe collection of metric families.

    One registry exists per process (the module-level default, reachable
    via :func:`get_registry`); tests may construct private instances.
    Family getters are idempotent — asking for an existing name returns
    the same family, asking with *different* metadata is an error.
    """

    def __init__(self):
        self._lock = threading.RLock()
        self._families: dict[str, _Family] = {}

    def _family(
        self,
        name: str,
        kind: str,
        help_text: str,
        labelnames: tuple[str, ...],
        buckets: tuple[float, ...] | None = None,
    ) -> _Family:
        with self._lock:
            family = self._families.get(name)
            if family is not None:
                if family.kind != kind or family.labelnames != tuple(labelnames):
                    raise ValueError(
                        f"metric {name} already registered as {family.kind}"
                        f"{family.labelnames}, cannot re-register as "
                        f"{kind}{tuple(labelnames)}"
                    )
                return family
            family = _Family(
                name=name,
                kind=kind,
                help=help_text,
                labelnames=tuple(labelnames),
                buckets=tuple(buckets) if buckets is not None else None,
                lock=self._lock,
            )
            self._families[name] = family
            return family

    def counter(self, name: str, help_text: str, labelnames: tuple[str, ...] = ()):
        """Get or create a counter family; with no labels, returns the
        single unlabeled child directly."""
        family = self._family(name, "counter", help_text, tuple(labelnames))
        return family if labelnames else family.labels()

    def gauge(self, name: str, help_text: str, labelnames: tuple[str, ...] = ()):
        family = self._family(name, "gauge", help_text, tuple(labelnames))
        return family if labelnames else family.labels()

    def histogram(
        self,
        name: str,
        help_text: str,
        labelnames: tuple[str, ...] = (),
        buckets: tuple[float, ...] = LATENCY_BUCKETS_MS,
    ):
        family = self._family(
            name, "histogram", help_text, tuple(labelnames), tuple(buckets)
        )
        return family if labelnames else family.labels()

    def from_catalog(self, entry: dict):
        """Get or create the family described by a :data:`CATALOG` entry."""
        labelnames = tuple(entry["labels"])
        if entry["type"] == "histogram":
            buckets = tuple(entry.get("buckets") or LATENCY_BUCKETS_MS)
            return self.histogram(
                entry["name"], entry["help"], labelnames, buckets=buckets
            )
        if entry["type"] == "gauge":
            return self.gauge(entry["name"], entry["help"], labelnames)
        return self.counter(entry["name"], entry["help"], labelnames)

    def snapshot(self, worker: str | None = None) -> dict:
        """JSON-friendly dump of every family and child.

        Histogram bucket counts are stored *non-cumulative* so that
        merging is element-wise addition; :func:`render_snapshot_text`
        re-cumulates for the exposition format.
        """
        with self._lock:
            metrics: dict[str, dict] = {}
            for name in sorted(self._families):
                family = self._families[name]
                samples = []
                for key in sorted(family.children):
                    child = family.children[key]
                    labels = dict(zip(family.labelnames, key))
                    if family.kind == "histogram":
                        samples.append(
                            {
                                "labels": labels,
                                "counts": child.raw_counts,
                                "sum": child.sum,
                                "count": child.count,
                            }
                        )
                    else:
                        samples.append({"labels": labels, "value": child.value})
                entry = {
                    "type": family.kind,
                    "help": family.help,
                    "labelnames": list(family.labelnames),
                    "samples": samples,
                }
                if family.kind == "histogram":
                    entry["buckets"] = list(family.buckets)
                metrics[name] = entry
        return {
            "version": SNAPSHOT_VERSION,
            "worker": worker if worker is not None else snapshot_worker_id(),
            "metrics": metrics,
        }

    def render_text(self) -> str:
        """Prometheus text exposition format for the current state."""
        return render_snapshot_text(self.snapshot())

    def reset(self) -> None:
        with self._lock:
            self._families.clear()


def render_snapshot_text(snapshot: dict) -> str:
    """Render a snapshot dict (from :meth:`MetricsRegistry.snapshot` or
    :func:`merge_snapshots`) in the Prometheus text exposition format."""
    lines: list[str] = []
    for name in sorted(snapshot["metrics"]):
        family = snapshot["metrics"][name]
        kind = family["type"]
        labelnames = tuple(family["labelnames"])
        lines.append(f"# HELP {name} {_escape_help(family['help'])}")
        lines.append(f"# TYPE {name} {kind}")
        for sample in family["samples"]:
            labelvalues = tuple(sample["labels"][ln] for ln in labelnames)
            if kind == "histogram":
                bounds = [*family["buckets"], float("inf")]
                cumulative = 0
                for bound, count in zip(bounds, sample["counts"]):
                    cumulative += count
                    le = _format_number(bound)
                    labels = _render_labels(labelnames, labelvalues, (("le", le),))
                    lines.append(f"{name}_bucket{labels} {cumulative}")
                labels = _render_labels(labelnames, labelvalues)
                lines.append(f"{name}_sum{labels} {_format_number(sample['sum'])}")
                lines.append(f"{name}_count{labels} {sample['count']}")
            else:
                labels = _render_labels(labelnames, labelvalues)
                lines.append(f"{name}{labels} {_format_number(sample['value'])}")
    return "\n".join(lines) + ("\n" if lines else "")


def merge_snapshots(snapshots: list[dict]) -> dict:
    """Merge per-worker snapshots into one fleet view.

    Counters and histograms sum; gauges take the max.  Both operations
    are associative and commutative, so any merge order (including
    incremental re-merges) yields the same fleet view.  Mixing
    incompatible definitions of the same metric name (different type,
    labels or buckets) is an error, not a silent coercion.
    """
    merged: dict[str, dict] = {}
    workers: list[str] = []
    for snap in snapshots:
        worker = snap.get("worker", "")
        if worker and worker not in workers:
            workers.append(worker)
        for name, family in snap.get("metrics", {}).items():
            target = merged.get(name)
            if target is None:
                target = {
                    "type": family["type"],
                    "help": family["help"],
                    "labelnames": list(family["labelnames"]),
                    "samples": [],
                }
                if family["type"] == "histogram":
                    target["buckets"] = list(family["buckets"])
                merged[name] = target
            else:
                if target["type"] != family["type"] or target["labelnames"] != list(
                    family["labelnames"]
                ):
                    raise ValueError(
                        f"cannot merge metric {name}: conflicting definitions "
                        f"({target['type']}{tuple(target['labelnames'])} vs "
                        f"{family['type']}{tuple(family['labelnames'])})"
                    )
                if family["type"] == "histogram" and target["buckets"] != list(
                    family["buckets"]
                ):
                    raise ValueError(
                        f"cannot merge histogram {name}: bucket boundaries differ"
                    )
            by_labels = {
                tuple(sorted(sample["labels"].items())): sample
                for sample in target["samples"]
            }
            for sample in family["samples"]:
                key = tuple(sorted(sample["labels"].items()))
                existing = by_labels.get(key)
                if existing is None:
                    if family["type"] == "histogram":
                        copy = {
                            "labels": dict(sample["labels"]),
                            "counts": list(sample["counts"]),
                            "sum": sample["sum"],
                            "count": sample["count"],
                        }
                    else:
                        copy = {
                            "labels": dict(sample["labels"]),
                            "value": sample["value"],
                        }
                    target["samples"].append(copy)
                    by_labels[key] = copy
                elif family["type"] == "histogram":
                    existing["counts"] = [
                        a + b for a, b in zip(existing["counts"], sample["counts"])
                    ]
                    existing["sum"] += sample["sum"]
                    existing["count"] += sample["count"]
                elif family["type"] == "gauge":
                    existing["value"] = max(existing["value"], sample["value"])
                else:
                    existing["value"] += sample["value"]
    for family in merged.values():
        family["samples"].sort(key=lambda s: tuple(sorted(s["labels"].items())))
    return {
        "version": SNAPSHOT_VERSION,
        "worker": ",".join(workers),
        "metrics": dict(sorted(merged.items())),
    }


# ---------------------------------------------------------------------------
# Module-level default registry and the engine's recording helpers.
# ---------------------------------------------------------------------------

_DEFAULT_REGISTRY = MetricsRegistry()
_METRICS_DIR: str | None = None

_WORKER_ENV = "REPRO_QUEUE_WORKER"  # mirrors repro.engine.queue (no import: cycle)


def get_registry() -> MetricsRegistry:
    """The process-wide default registry the engine records into."""
    return _DEFAULT_REGISTRY


def configure_metrics(directory: str | os.PathLike) -> None:
    """Enable metrics collection, flushing snapshots into ``directory``.

    Creates the directory eagerly so a bad ``--metrics-dir`` fails at
    startup, not after a long run.  Idempotent; call
    :func:`reset_metrics` to disable again (tests do).
    """
    global _METRICS_DIR
    directory = os.fspath(directory)
    os.makedirs(directory, exist_ok=True)
    _METRICS_DIR = directory


def metrics_enabled() -> bool:
    return _METRICS_DIR is not None


def metrics_dir() -> str | None:
    return _METRICS_DIR


def reset_metrics(keep_dir: bool = False) -> None:
    """Clear all recorded values; optionally keep the configured
    directory.  ``keep_dir=True`` is how forked pool workers drop the
    counts inherited from the parent (flushing them again would
    double-count on merge) while staying configured to flush their own."""
    global _METRICS_DIR
    _DEFAULT_REGISTRY.reset()
    if not keep_dir:
        _METRICS_DIR = None


def snapshot_worker_id() -> str:
    """Stable-ish identity for this process's snapshot files.

    The queue's ``REPRO_QUEUE_WORKER`` pin wins when set (fleet metrics
    then line up with the event streams); otherwise ``hostname-pid``.
    Computed at call time, never cached: a forked pool worker must not
    inherit its parent's id.
    """
    pinned = os.environ.get(_WORKER_ENV, "").strip()
    if pinned:
        raw = pinned
    else:
        raw = f"{socket.gethostname()}-{os.getpid()}"
    return "".join(c if (c.isalnum() or c in "-_.") else "-" for c in raw) or "worker"


def flush_metrics() -> str | None:
    """Atomically write this process's snapshot pair into the metrics dir.

    Writes ``metrics_<worker>.prom`` (Prometheus text) and a
    ``metrics_<worker>.json`` twin (the merge input), both via
    temp-file-plus-:func:`os.replace` so a concurrently running
    ``cache metrics`` never reads a half-written file.  Returns the
    ``.prom`` path, or ``None`` when metrics are disabled.  Safe to call
    repeatedly — each flush replaces the previous snapshot wholesale.
    """
    directory = _METRICS_DIR
    if directory is None:
        return None
    worker = snapshot_worker_id()
    snap = _DEFAULT_REGISTRY.snapshot(worker=worker)
    text = render_snapshot_text(snap)
    prom_path = os.path.join(directory, f"metrics_{worker}.prom")
    json_path = os.path.join(directory, f"metrics_{worker}.json")
    for path, payload in ((json_path, json.dumps(snap, indent=2) + "\n"), (prom_path, text)):
        tmp = f"{path}.tmp.{os.getpid()}"
        try:
            with open(tmp, "w", encoding="utf-8") as handle:
                handle.write(payload)
            os.replace(tmp, path)
        except OSError:
            # Telemetry must never abort the computation (full disk,
            # directory deleted mid-run): drop the snapshot silently.
            try:
                os.unlink(tmp)
            except OSError:
                pass
            return None
    return prom_path


def load_snapshot(path: str | os.PathLike) -> dict:
    """Read one ``metrics_*.json`` snapshot file."""
    with open(path, encoding="utf-8") as handle:
        snap = json.load(handle)
    if not isinstance(snap, dict) or "metrics" not in snap:
        raise ValueError(f"{os.fspath(path)} is not a metrics snapshot")
    return snap


def read_metrics_dir(directory: str | os.PathLike) -> list[dict]:
    """Load every per-worker JSON snapshot under ``directory`` (sorted by
    filename, so the merge is reproducible)."""
    directory = os.fspath(directory)
    snapshots = []
    for name in sorted(os.listdir(directory)):
        if name.startswith("metrics_") and name.endswith(".json"):
            snapshots.append(load_snapshot(os.path.join(directory, name)))
    return snapshots


def _catalog_entry(name: str) -> dict:
    for entry in CATALOG:
        if entry["name"] == name:
            return entry
    raise KeyError(name)


def _job_kind(result) -> str:
    if getattr(result, "stack_size", 1) > 1:
        return "stacked"
    return "sweep" if type(result).__name__ == "SweepResult" else "cell"


def record_task(result, cached: bool) -> None:
    """Count one completed task and fold its ``phase_seconds`` telemetry
    into the latency histograms.  Cached tasks count toward
    ``repro_tasks_total`` only — their phases were not re-run."""
    if _METRICS_DIR is None:
        return
    job = _job_kind(result)
    status = "cached" if cached else "computed"
    registry = _DEFAULT_REGISTRY
    registry.from_catalog(_catalog_entry("repro_tasks_total")).labels(
        job=job, status=status
    ).inc()
    if cached:
        return
    phases = getattr(result, "phase_seconds", None) or {}
    histogram = registry.from_catalog(_catalog_entry("repro_task_phase_duration_ms"))
    for key, seconds in phases.items():
        phase = key[:-2] if key.endswith("_s") else key
        if not isinstance(seconds, (int, float)):
            continue
        histogram.labels(job=job, phase=phase).observe(float(seconds) * 1000.0)


def record_cache(kind: str, op: str) -> None:
    """One cache operation: ``kind`` in cell/sweep/weights, ``op`` in
    hit/miss/put."""
    if _METRICS_DIR is None:
        return
    _DEFAULT_REGISTRY.from_catalog(_catalog_entry("repro_cache_requests_total")).labels(
        cache=kind, op=op
    ).inc()


def record_queue_event(event: str) -> None:
    """One work-queue lifecycle event (claim/steal/commit/cached/
    duplicate/failed/retry/quarantine/handoff/timeout/cache_write_retry)
    — recorded exactly where the JSONL event stream is appended, so
    metrics and ``cache watch`` always agree."""
    if _METRICS_DIR is None:
        return
    _DEFAULT_REGISTRY.from_catalog(_catalog_entry("repro_queue_events_total")).labels(
        event=event
    ).inc()


def record_task_attempts(outcome: str, attempts: int) -> None:
    """Observe how many attempts a task needed to resolve.

    ``outcome`` is ``committed`` (recorded by the worker whose commit
    marker won, with the attempt number that succeeded) or
    ``quarantined`` (recorded once, by the worker that created the
    quarantine marker, with the budget-exhausting attempt count).
    Cache-served replays are not observed — they spent no attempt.
    """
    if _METRICS_DIR is None:
        return
    _DEFAULT_REGISTRY.from_catalog(_catalog_entry("repro_task_attempts")).labels(
        outcome=outcome
    ).observe(float(attempts))


def set_queue_depth(depth: int) -> None:
    """Sample the number of not-yet-committed tasks in the queue."""
    if _METRICS_DIR is None:
        return
    _DEFAULT_REGISTRY.from_catalog(_catalog_entry("repro_queue_depth")).set(depth)


def record_search_rung() -> None:
    if _METRICS_DIR is None:
        return
    _DEFAULT_REGISTRY.from_catalog(_catalog_entry("repro_search_rungs_total")).inc()


def record_search_promotion(outcome: str, count: int = 1) -> None:
    """``outcome`` in promoted/pruned; ``count`` cells at once."""
    if _METRICS_DIR is None or count <= 0:
        return
    _DEFAULT_REGISTRY.from_catalog(
        _catalog_entry("repro_search_promotions_total")
    ).labels(outcome=outcome).inc(count)


def record_search_warm_start(source: str) -> None:
    """``source``: ``self`` (own lower-budget checkpoint, bitwise resume)
    or ``neighbor`` (nearest compatible cell's archive)."""
    if _METRICS_DIR is None:
        return
    _DEFAULT_REGISTRY.from_catalog(
        _catalog_entry("repro_search_warm_starts_total")
    ).labels(source=source).inc()
