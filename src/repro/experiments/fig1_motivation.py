"""Figure 1 — motivational case study.

Trains the 5-layer CNN (3 conv + 2 FC) and the equal-topology SNN with
default structural parameters, applies white-box PGD at increasing noise
budgets, and tracks the accuracy of both.  The paper's claims:

1. at low ε the CNN is (slightly) more accurate;
2. past a turnaround point (ε ≈ 0.5) the SNN degrades much more slowly;
3. for ε > 1 the gap exceeds 50 %.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.attacks.metrics import evaluate_clean_accuracy
from repro.experiments.profiles import ExperimentProfile, get_profile
from repro.experiments.workloads import load_profile_data, make_profile_attack_builder
from repro.models.registry import build_model
from repro.robustness.report import render_curve_table
from repro.robustness.security import RobustnessCurve, robustness_curve
from repro.training.trainer import Trainer
from repro.utils.logging import get_logger
from repro.utils.seeding import SeedSequence

__all__ = ["Fig1Result", "run_fig1"]

_logger = get_logger("experiments.fig1")


@dataclass(frozen=True)
class Fig1Result:
    """Accuracy-vs-epsilon curves of the motivational study."""

    epsilons: tuple[float, ...]
    cnn_curve: RobustnessCurve
    snn_curve: RobustnessCurve
    cnn_clean_accuracy: float
    snn_clean_accuracy: float

    @property
    def turnaround_epsilon(self) -> float | None:
        """First ε where the SNN overtakes the CNN (paper pointer 2)."""
        for eps, cnn_r, snn_r in zip(
            self.epsilons, self.cnn_curve.robustness, self.snn_curve.robustness
        ):
            if snn_r > cnn_r:
                return eps
        return None

    @property
    def max_gap(self) -> float:
        """Largest (SNN − CNN) robustness gap over the sweep (pointer 3)."""
        return max(
            s - c
            for s, c in zip(self.snn_curve.robustness, self.cnn_curve.robustness)
        )

    def render(self) -> str:
        """Text rendering of the figure."""
        table = render_curve_table(
            self.epsilons,
            {"CNN (3conv+2fc)": self.cnn_curve.robustness,
             "SNN (same topo)": self.snn_curve.robustness},
            title="Figure 1 - PGD attack on CNN vs SNN (accuracy %, by epsilon)",
        )
        extra = (
            f"\nturnaround epsilon: {self.turnaround_epsilon}"
            f"\nmax SNN-CNN gap: {self.max_gap * 100:.1f}%"
        )
        return table + extra

    def as_dict(self) -> dict:
        """JSON-friendly representation."""
        return {
            "epsilons": list(self.epsilons),
            "cnn": self.cnn_curve.as_dict(),
            "snn": self.snn_curve.as_dict(),
            "cnn_clean_accuracy": self.cnn_clean_accuracy,
            "snn_clean_accuracy": self.snn_clean_accuracy,
            "turnaround_epsilon": self.turnaround_epsilon,
            "max_gap": self.max_gap,
        }


def run_fig1(profile: ExperimentProfile | str = "smoke", verbose: bool = False) -> Fig1Result:
    """Reproduce the Figure-1 sweep under the given profile."""
    if isinstance(profile, str):
        profile = get_profile(profile)
    seeds = SeedSequence(profile.seed)
    train, test, _bounds = load_profile_data(profile)
    attack_subset = test.take(profile.attack_subset)

    cnn = build_model(
        profile.fig1_cnn_model,
        input_size=profile.image_size,
        rng=seeds.child_seed("fig1", "cnn"),
    )
    snn = build_model(
        profile.fig1_snn_model,
        input_size=profile.image_size,
        time_steps=profile.time_steps_default,
        input_scale=profile.input_scale,
        rng=seeds.child_seed("fig1", "snn"),
    )

    training = profile.training_config()
    if verbose:
        _logger.info("training CNN (%s)", profile.fig1_cnn_model)
    Trainer(cnn, training).fit(train)
    if verbose:
        _logger.info("training SNN (%s, T=%d)", profile.fig1_snn_model, profile.time_steps_default)
    Trainer(snn, training).fit(train)

    attack_builder = make_profile_attack_builder(profile)
    cnn_curve = robustness_curve(
        cnn, attack_subset, profile.curve_epsilons, attack_builder, label="cnn"
    )
    snn_curve = robustness_curve(
        snn, attack_subset, profile.curve_epsilons, attack_builder, label="snn"
    )
    return Fig1Result(
        epsilons=tuple(profile.curve_epsilons),
        cnn_curve=cnn_curve,
        snn_curve=snn_curve,
        cnn_clean_accuracy=evaluate_clean_accuracy(cnn, test),
        snn_clean_accuracy=evaluate_clean_accuracy(snn, test),
    )
