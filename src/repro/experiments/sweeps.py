"""Spawn-safe job-context builders and task lists for the engine-ported experiments.

Every engine-backed experiment (the Figs. 6-8 grid, the Fig. 9 sweet-spot
tracking, the ablation suite) is expressed here as two module-level
pieces:

* a **context builder** — ``build_*_context(profile, cache_dir,
  reuse_weights)`` returning the full job context (datasets, model
  builder, training/attack settings, optional weight cache).  Because the
  builders are importable by name, a
  :class:`~repro.engine.scheduler.ContextSpec` pointing at them lets
  *spawn* workers reconstruct profile, data and model locally instead of
  pickling closures across the process boundary;
* a **task builder** — ``build_*_tasks(profile, ...)`` expanding the
  profile into deterministically-seeded picklable tasks.

The experiment runners in :mod:`repro.experiments.fig9_sweetspots`,
:mod:`repro.experiments.ablations` and
:mod:`repro.experiments.fig678_grid` consume both and feed them to
:func:`repro.engine.scheduler.run_tasks`.
"""

from __future__ import annotations

from collections.abc import Callable
from pathlib import Path

from repro.engine.cache import SweepCache, WeightCache, sweep_fingerprint, training_fingerprint
from repro.engine.costs import (
    cached_sweep_costs,
    order_sweep_tasks,
    sweep_deadline_estimator,
)
from repro.engine.job import ExplorationJobContext
from repro.engine.queue import (
    DEFAULT_LEASE_TTL,
    QueueRunResult,
    run_queued_tasks,
)
from repro.engine.resilience import ResilienceConfig
from repro.engine.scheduler import ContextSpec, run_tasks
from repro.engine.shard import (
    ShardRunResult,
    ShardSpec,
    record_durable_manifest,
)
from repro.engine.sweep import (
    SweepJobContext,
    SweepResult,
    SweepTask,
    make_sweep_task,
    run_sweep_task,
)
from repro.experiments.profiles import (
    ExperimentProfile,
    available_profiles,
    get_profile,
)
from repro.experiments.workloads import build_grid_model_factory, load_profile_data
from repro.models.registry import build_model
from repro.robustness.config import ExplorationConfig
from repro.snn.encoding import PoissonEncoder
from repro.snn.neuron import LIFParameters
from repro.utils.logging import get_logger
from repro.utils.seeding import SeedSequence

__all__ = [
    "ABLATION_FACTORS",
    "DEFAULT_ATTACK_FAMILIES",
    "DEFAULT_SURROGATE_FAMILIES",
    "build_ablation_context",
    "build_ablation_tasks",
    "build_fig9_context",
    "build_fig9_tasks",
    "build_grid_context",
    "run_sweep_schedule",
    "shard_run_result",
    "spawn_spec_for",
]

ABLATION_FACTORS = ("surrogate", "encoding", "reset", "attack")
"""Factors of the ablation suite, in declared execution order."""

DEFAULT_SURROGATE_FAMILIES = ("superspike", "triangle", "arctan")
"""Surrogate-gradient families compared by the surrogate ablation."""

DEFAULT_ATTACK_FAMILIES = ("pgd", "bim", "fgsm", "sign_noise", "uniform_noise")
"""Attack families compared by the attack ablation (strongest first)."""


def _as_profile(profile: ExperimentProfile | str) -> ExperimentProfile:
    if isinstance(profile, str):
        return get_profile(profile)
    return profile


def spawn_spec_for(
    builder: str,
    profile: ExperimentProfile,
    cache_dir: str | Path | None,
    reuse_weights: bool,
) -> ContextSpec | None:
    """A :class:`ContextSpec` for one of this module's context builders.

    Returns ``None`` for unregistered (ad-hoc) profiles — spawn workers
    rebuild the context by *name*, so only profiles reachable through
    :func:`~repro.experiments.profiles.get_profile` can cross a spawn
    boundary; the scheduler then falls back to fork or serial.
    """
    if profile.name not in available_profiles():
        return None
    if get_profile(profile.name) != profile:
        return None
    return ContextSpec(
        target=f"repro.experiments.sweeps:{builder}",
        kwargs={
            "profile": profile.name,
            "cache_dir": None if cache_dir is None else str(cache_dir),
            "reuse_weights": bool(reuse_weights),
        },
    )


def run_sweep_schedule(
    profile: ExperimentProfile,
    context_builder: Callable,
    tasks: list[SweepTask],
    experiment: str,
    verbose: bool = False,
    jobs: int = 1,
    cache_dir: str | Path | None = None,
    resume: bool = False,
    start_method: str = "auto",
    shard: ShardSpec | None = None,
    queue_dir: str | Path | None = None,
    lease_ttl: float = DEFAULT_LEASE_TTL,
    resilience: ResilienceConfig | None = None,
) -> tuple[list[SweepResult] | QueueRunResult, dict]:
    """Shared scheduling scaffold of the engine-ported sweep experiments.

    Builds the context via ``context_builder`` (one of this module's
    ``build_*_context`` functions — its name doubles as the spawn spec
    target), wires up the result cache, progress logging and the spawn
    spec, runs the schedule, and returns ``(results, metadata)`` where
    metadata carries the engine stats and the weight-reuse count.

    With ``shard`` set, only the shard's slice of ``tasks`` is served and
    ``results`` covers exactly that slice.  Whenever a cache directory is
    in play, the run folds its completed task ids into the directory's
    shard manifest (``shard.json``) — written in a ``finally`` so even an
    interrupted run leaves an accurate completion record for
    ``cache verify`` / :func:`repro.engine.merge.verify_cache_dir`.

    With ``queue_dir`` set, the run instead joins the dynamic work queue
    under ``<queue_dir>/<experiment>`` as one worker of an elastic fleet
    (see :mod:`repro.engine.queue`) and ``results`` is the worker's
    :class:`~repro.engine.queue.QueueRunResult` — the figure is rendered
    later, by a ``--resume`` run against the shared cache directory.
    """
    if resume and cache_dir is None:
        raise ValueError("resume=True requires cache_dir to resume from")
    if queue_dir is not None and shard is not None:
        raise ValueError("queue_dir (dynamic fleet) conflicts with shard (static)")
    if queue_dir is not None and cache_dir is None:
        raise ValueError("queue_dir requires cache_dir: the shared checkpoint "
                         "directory is how queue workers exchange results")
    context = context_builder(profile, cache_dir=cache_dir, reuse_weights=resume)
    cache = None
    if cache_dir is not None:
        # The model builder cannot be hashed, so the fingerprint must pin
        # everything it derives from (model names, scales) via tags —
        # otherwise a changed model with unchanged data would hit stale
        # sweep checkpoints.
        cache = SweepCache(
            cache_dir, sweep_fingerprint(context, tags=_model_tags(profile, experiment))
        )
    spec = spawn_spec_for(context_builder.__name__, profile, cache_dir, resume)
    logger = get_logger(f"experiments.{experiment}")
    total = len(tasks) if shard is None else len(shard.partition(tasks))
    done = 0
    weights_reused = 0

    def progress(task: SweepTask, result: SweepResult, from_cache: bool) -> None:
        nonlocal done, weights_reused
        done += 1
        if not from_cache and result.weights_from_cache:
            # Count only this run's weight-cache hits; checkpointed
            # results persist the flag from the run that computed them.
            weights_reused += 1
        if not verbose:
            return
        source = "cached" if from_cache else (
            "weights reused" if result.weights_from_cache else "trained"
        )
        logger.info(
            "[%d/%d] %s acc=%.3f (%s)",
            done, total, task.key, result.clean_accuracy, source,
        )

    # Longest-first dispatch keeps the final worker busy with short tasks
    # instead of idling behind one long straggler; costs come from prior
    # runs' cached phase timings, falling back to a T-descending estimate.
    costs = cached_sweep_costs(cache_dir) if cache_dir is not None else None

    if queue_dir is not None:
        supervision = resilience if resilience is not None else ResilienceConfig()
        queue_result, stats = run_queued_tasks(
            context,
            tasks,
            run_sweep_task,
            cache,
            Path(queue_dir) / experiment,
            experiment=experiment,
            cache_dir=cache_dir,
            resume=resume,
            progress=progress,
            lease_ttl=lease_ttl,
            pending_order=lambda pending: order_sweep_tasks(pending, costs),
            resilience=supervision,
            task_deadline=sweep_deadline_estimator(
                costs,
                multiplier=supervision.watchdog_multiplier,
                floor=supervision.watchdog_floor,
            ),
        )
        queue_result.metadata.update(
            profile=profile.name, weights_reused=weights_reused
        )
        metadata = dict(queue_result.metadata)
        if queue_result.manifest_path is not None:
            metadata["manifest_path"] = queue_result.manifest_path
        return queue_result, metadata

    manifest_path: str | None = None
    try:
        results, stats = run_tasks(
            context,
            tasks,
            run_sweep_task,
            jobs=jobs,
            cache=cache,
            resume=resume,
            progress=progress,
            start_method=start_method,
            context_spec=spec,
            shard=shard,
            pending_order=lambda pending: order_sweep_tasks(pending, costs),
        )
    finally:
        if cache is not None:
            manifest_path = record_durable_manifest(
                cache_dir, cache, experiment, tasks, shard
            )
    metadata = {
        "profile": profile.name,
        "engine": stats.as_dict(),
        "weights_reused": weights_reused,
    }
    if manifest_path is not None:
        metadata["manifest_path"] = manifest_path
    return results, metadata


def shard_run_result(
    experiment: str,
    shard: ShardSpec,
    tasks: list[SweepTask],
    metadata: dict,
) -> ShardRunResult:
    """The summary a sharded sweep runner returns instead of its figure.

    Reaching this point means :func:`run_sweep_schedule` returned, i.e.
    every owned task completed — the owned slice *is* the completed set.
    """
    owned = shard.partition(tasks)
    return ShardRunResult(
        experiment=experiment,
        shard=shard,
        task_count=len(tasks),
        completed=tuple(task.index for task in owned),
        manifest_path=metadata.get("manifest_path"),
        metadata=metadata,
    )


# -- Figs. 6-8 grid ------------------------------------------------------------


def build_grid_context(
    profile: ExperimentProfile | str,
    cache_dir: str | Path | None = None,
    reuse_weights: bool = False,
) -> ExplorationJobContext:
    """Job context of the Figs. 6-8 grid exploration (Algorithm 1).

    The single source of truth for how a profile maps onto an
    :class:`~repro.robustness.config.ExplorationConfig` — the CLI parent
    process and every spawn worker call this same function, so their
    contexts agree by construction.
    """
    profile = _as_profile(profile)
    train, test, (clip_min, clip_max) = load_profile_data(profile)
    attack_subset = test.take(profile.attack_subset)
    config = ExplorationConfig(
        v_thresholds=profile.v_thresholds,
        time_windows=profile.time_windows,
        epsilons=profile.grid_epsilons,
        accuracy_threshold=profile.accuracy_threshold,
        attack="pgd",
        attack_steps=profile.pgd_steps,
        clip_min=clip_min,
        clip_max=clip_max,
        training=profile.training_config(),
        seed=profile.seed,
    )
    context = ExplorationJobContext(
        model_factory=build_grid_model_factory(profile),
        train_set=train,
        test_set=attack_subset,
        config=config,
    )
    if cache_dir is not None:
        fingerprint = training_fingerprint(
            train,
            config.training,
            eval_sets=(attack_subset,),
            tags=_model_tags(profile, "fig678_grid"),
        )
        context.weight_cache = WeightCache(cache_dir, fingerprint)
        context.reuse_weights = bool(reuse_weights)
    return context


# -- Fig. 9 sweet spots --------------------------------------------------------


def _model_tags(profile: ExperimentProfile, experiment: str) -> dict:
    """Weight-fingerprint tags pinning what the factories derive from."""
    return {
        "experiment": experiment,
        "profile": profile.name,
        "snn_model": profile.snn_model,
        "cnn_model": profile.cnn_model,
        "image_size": profile.image_size,
        "input_scale": profile.input_scale,
        "time_steps_default": profile.time_steps_default,
    }


def _fig9_model_builder(profile: ExperimentProfile):
    def build(task: SweepTask):
        if task.kind == "fig9_cnn":
            return build_model(
                profile.cnn_model,
                input_size=profile.image_size,
                rng=task.train_seed,
            )
        return build_model(
            profile.snn_model,
            input_size=profile.image_size,
            time_steps=int(task.param("time_window")),
            lif_params=LIFParameters(v_th=float(task.param("v_th"))),
            input_scale=profile.input_scale,
            rng=task.train_seed,
        )

    return build


def build_fig9_context(
    profile: ExperimentProfile | str,
    cache_dir: str | Path | None = None,
    reuse_weights: bool = False,
) -> SweepJobContext:
    """Job context of the Fig. 9 sweet-spot tracking.

    Clean accuracy is scored on the full test set (as in the paper's
    figure annotations); attacks run on the profile's test subset.
    """
    profile = _as_profile(profile)
    train, test, (clip_min, clip_max) = load_profile_data(profile)
    attack_subset = test.take(profile.attack_subset)
    context = SweepJobContext(
        model_builder=_fig9_model_builder(profile),
        train_set=train,
        clean_eval_set=test,
        attack_set=attack_subset,
        training=profile.training_config(),
        attack_steps=profile.pgd_steps,
        clip_min=clip_min,
        clip_max=clip_max,
    )
    if cache_dir is not None:
        fingerprint = training_fingerprint(
            train,
            context.training,
            eval_sets=(test, attack_subset),
            tags=_model_tags(profile, "fig9"),
        )
        context.weight_cache = WeightCache(cache_dir, fingerprint)
        context.reuse_weights = bool(reuse_weights)
    return context


def build_fig9_tasks(
    profile: ExperimentProfile,
    epsilons: tuple[float, ...] | None = None,
) -> list[SweepTask]:
    """One task per tracked combination plus the comparator CNN.

    ``epsilons`` overrides the profile's curve sweep — the
    "security-only re-sweep" entry point: new budgets change the sweep
    checkpoints but not the weight-cache keys, so trained models are
    reused.
    """
    seeds = SeedSequence(profile.seed)
    sweep = tuple(float(e) for e in (epsilons or profile.curve_epsilons))
    tasks = [
        make_sweep_task(seeds, 0, "cnn", "fig9_cnn", attacks=("pgd",), epsilons=sweep)
    ]
    for v_th, time_window in profile.sweet_spots:
        tasks.append(
            make_sweep_task(
                seeds,
                len(tasks),
                f"snn_vth{v_th:g}_T{time_window}",
                "fig9_snn",
                params=(("time_window", int(time_window)), ("v_th", float(v_th))),
                attacks=("pgd",),
                epsilons=sweep,
            )
        )
    return tasks


# -- ablation suite ------------------------------------------------------------


def _ablation_model_builder(profile: ExperimentProfile):
    def build(task: SweepTask):
        lif_kwargs = {"v_th": float(task.param("v_th", 1.0))}
        surrogate = task.param("surrogate")
        if surrogate is not None:
            lif_kwargs["surrogate"] = str(surrogate)
        reset_mode = task.param("reset_mode")
        if reset_mode is not None:
            lif_kwargs["reset_mode"] = str(reset_mode)
        model = build_model(
            profile.snn_model,
            input_size=profile.image_size,
            time_steps=profile.time_steps_default,
            lif_params=LIFParameters(**lif_kwargs),
            input_scale=profile.input_scale,
            rng=task.train_seed,
        )
        if task.param("encoder") == "poisson":
            # Poisson rate coding expects non-negative intensities; the
            # scale maps normalized inputs onto spike probabilities.
            model.encoder = PoissonEncoder(
                scale=float(task.param("encoder_scale", 0.35)),
                rng=int(task.param("encoder_seed", task.train_seed)),
            )
        return model

    return build


def _ablation_attack_prep(model, task: SweepTask) -> None:
    """Reset stateful encoders before the sweep (both job paths).

    The Poisson encoder's rng advances during training, so without this
    a weight-cached re-sweep (fresh encoder) would draw differently from
    the run that trained in-process.  Reseeding from the *attack* seed on
    every path makes the sweep deterministic regardless of how the
    weights were obtained.
    """
    if task.param("encoder") == "poisson":
        model.encoder = PoissonEncoder(
            scale=float(task.param("encoder_scale", 0.35)),
            rng=task.attack_seed,
        )


def build_ablation_context(
    profile: ExperimentProfile | str,
    cache_dir: str | Path | None = None,
    reuse_weights: bool = False,
) -> SweepJobContext:
    """Job context shared by all four ablation factors.

    One context serves every factor — tasks differ only in their build
    parameters and attack lists — so a single scheduler invocation can
    parallelize across the whole suite.
    """
    profile = _as_profile(profile)
    train, test, (clip_min, clip_max) = load_profile_data(profile)
    attack_subset = test.take(profile.attack_subset)
    context = SweepJobContext(
        model_builder=_ablation_model_builder(profile),
        train_set=train,
        clean_eval_set=attack_subset,
        attack_set=attack_subset,
        training=profile.training_config(),
        attack_steps=profile.pgd_steps,
        clip_min=clip_min,
        clip_max=clip_max,
        attack_prep=_ablation_attack_prep,
    )
    if cache_dir is not None:
        fingerprint = training_fingerprint(
            train,
            context.training,
            eval_sets=(attack_subset,),
            tags=_model_tags(profile, "ablation"),
        )
        context.weight_cache = WeightCache(cache_dir, fingerprint)
        context.reuse_weights = bool(reuse_weights)
    return context


def build_ablation_tasks(
    profile: ExperimentProfile,
    factors: tuple[str, ...] = ABLATION_FACTORS,
    surrogate_families: tuple[str, ...] = DEFAULT_SURROGATE_FAMILIES,
    attack_families: tuple[str, ...] = DEFAULT_ATTACK_FAMILIES,
    epsilons: tuple[float, ...] | None = None,
) -> list[SweepTask]:
    """Expand the requested ablation factors into one flat task list.

    Task keys are ``"<factor>:<variant>"`` (e.g. ``"surrogate:arctan"``),
    so results regroup by factor afterwards.  The attack ablation is a
    single task: one trained reference model swept by every attack family.
    """
    unknown = sorted(set(factors) - set(ABLATION_FACTORS))
    if unknown:
        raise ValueError(
            f"unknown ablation factors {unknown}; available: {ABLATION_FACTORS}"
        )
    seeds = SeedSequence(profile.seed)
    sweep = tuple(float(e) for e in (epsilons or profile.grid_epsilons))
    reference_v_th = float(profile.sweet_spots[0][0])
    tasks: list[SweepTask] = []

    def add(key: str, params: tuple, attacks: tuple[str, ...] = ("pgd",)) -> None:
        tasks.append(
            make_sweep_task(
                seeds, len(tasks), key, "ablation", params, attacks, sweep
            )
        )

    for factor in factors:
        if factor == "surrogate":
            for family in surrogate_families:
                add(f"surrogate:{family}",
                    (("surrogate", family), ("v_th", reference_v_th)))
        elif factor == "encoding":
            add("encoding:constant_current",
                (("encoder", "constant"), ("v_th", reference_v_th)))
            add(
                "encoding:poisson_rate",
                (
                    ("encoder", "poisson"),
                    ("encoder_scale", 0.35),
                    ("encoder_seed", seeds.child_seed("ablation", "poisson")),
                    ("v_th", reference_v_th),
                ),
            )
        elif factor == "reset":
            for mode in ("hard", "soft"):
                add(f"reset:reset_{mode}",
                    (("reset_mode", mode), ("v_th", reference_v_th)))
        elif factor == "attack":
            add(
                "attack:reference_snn",
                (("v_th", reference_v_th),),
                attacks=tuple(attack_families),
            )
    return tasks
