"""Experiment profiles: paper-scale vs CPU-friendly settings.

All profiles run the *same code path*; they differ only in grid density,
sample counts and training length (DESIGN.md §4):

* ``micro`` — seconds; used by the integration tests.
* ``micro-search`` — micro's scale with a longer budget (6 epochs over a
  3x2 grid) and an open learnability gate; the guided-search CI job
  needs rungs to halve over and robustness numbers to rank by.
* ``smoke`` — minutes on CPU; default for the pytest benchmarks. Grid and
  budgets cover the paper's interesting region (thresholds 0.25-2.25,
  windows 8-48, ε up to 2) at reduced density.
* ``paper`` — the full 9x8 grid with T up to 72 and thousands of samples;
  hours on CPU, intended for ``python -m repro.experiments --profile paper``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.training.trainer import TrainingConfig

__all__ = ["ExperimentProfile", "available_profiles", "get_profile"]


@dataclass(frozen=True)
class ExperimentProfile:
    """All knobs of one experiment scale."""

    name: str
    """Profile identifier."""

    image_size: int
    """Canvas size of the synthetic digits."""

    num_train: int
    """Training-set size."""

    num_test: int
    """Test-set size (clean-accuracy evaluation)."""

    attack_subset: int
    """Number of test samples used when crafting adversarial examples
    (bounds attack cost; the paper uses the full test set on a GPU)."""

    snn_model: str
    """Registry name of the spiking model under exploration."""

    cnn_model: str
    """Registry name of the comparator CNN."""

    fig1_snn_model: str
    """Registry name of the Fig.-1 motivational SNN (CNN5 twin)."""

    fig1_cnn_model: str
    """Registry name of the Fig.-1 motivational CNN."""

    time_steps_default: int
    """Default time window (the paper's default is T = 64)."""

    epochs: int
    batch_size: int
    learning_rate: float

    pgd_steps: int
    """Iterations of the PGD attack."""

    v_thresholds: tuple[float, ...]
    """Grid thresholds for Figs. 6-8."""

    time_windows: tuple[int, ...]
    """Grid time windows for Figs. 6-8."""

    grid_epsilons: tuple[float, ...]
    """Budgets evaluated during the grid security study (Figs. 7, 8)."""

    curve_epsilons: tuple[float, ...]
    """Budget sweep for the curve figures (Figs. 1, 9)."""

    sweet_spots: tuple[tuple[float, int], ...]
    """The tracked (Vth, T) combinations of Fig. 9."""

    accuracy_threshold: float
    """Learnability gate Ath."""

    seed: int
    """Root seed of the whole experiment."""

    input_scale: float = 1.0
    """Encoder current scale (1.0 for MNIST-normalized inputs)."""

    def training_config(self) -> TrainingConfig:
        """Training hyper-parameters derived from the profile."""
        return TrainingConfig(
            epochs=self.epochs,
            batch_size=self.batch_size,
            learning_rate=self.learning_rate,
            seed=self.seed,
        )

    def validate(self) -> None:
        """Raise :class:`ConfigurationError` on inconsistent settings."""
        if self.num_train < 10 or self.num_test < 10:
            raise ConfigurationError("profiles need at least 10 train/test samples")
        if self.attack_subset > self.num_test:
            raise ConfigurationError("attack_subset cannot exceed num_test")
        for v_th, t in self.sweet_spots:
            if v_th <= 0 or t < 1:
                raise ConfigurationError(f"invalid sweet spot ({v_th}, {t})")


_MICRO = ExperimentProfile(
    name="micro",
    image_size=12,
    num_train=80,
    num_test=40,
    attack_subset=20,
    snn_model="snn_lenet_mini",
    cnn_model="lenet_mini",
    fig1_snn_model="snn_cnn5",
    fig1_cnn_model="cnn5",
    time_steps_default=10,
    epochs=2,
    batch_size=16,
    learning_rate=5e-3,
    pgd_steps=3,
    v_thresholds=(0.5, 1.0),
    time_windows=(8, 16),
    grid_epsilons=(1.0,),
    curve_epsilons=(0.0, 1.0),
    sweet_spots=((1.0, 16), (0.5, 8)),
    accuracy_threshold=0.3,
    seed=0xD47E,
)

_MICRO_SEARCH = ExperimentProfile(
    name="micro-search",
    image_size=12,
    num_train=80,
    num_test=40,
    attack_subset=20,
    snn_model="snn_lenet_mini",
    cnn_model="lenet_mini",
    fig1_snn_model="snn_cnn5",
    fig1_cnn_model="cnn5",
    time_steps_default=10,
    # Longer budget than micro so a guided search has rungs to halve
    # over (micro's 2 epochs leave no room below the full budget), and
    # an open learnability gate so every cell reaches the attack phase —
    # the search CI job ranks by robustness, which needs robust numbers.
    epochs=6,
    batch_size=16,
    learning_rate=5e-3,
    pgd_steps=3,
    # Dense enough (12 cells) that successive halving's pruning pays for
    # the warm-start bias audit with train-seconds to spare.
    v_thresholds=(0.25, 0.5, 0.75, 1.0, 1.25, 1.5),
    time_windows=(8, 16),
    grid_epsilons=(1.0,),
    curve_epsilons=(0.0, 1.0),
    sweet_spots=((1.0, 16), (0.5, 8)),
    accuracy_threshold=0.0,
    seed=0xD47E,
)

_SMOKE = ExperimentProfile(
    name="smoke",
    image_size=16,
    num_train=600,
    num_test=150,
    attack_subset=64,
    snn_model="snn_lenet_mini",
    cnn_model="lenet_mini",
    fig1_snn_model="snn_cnn5",
    fig1_cnn_model="cnn5",
    time_steps_default=32,
    epochs=5,
    batch_size=32,
    learning_rate=5e-3,
    pgd_steps=8,
    v_thresholds=(0.25, 0.75, 1.25, 2.25),
    time_windows=(8, 16, 32, 48),
    grid_epsilons=(1.0, 1.5),
    curve_epsilons=(0.0, 0.25, 0.5, 0.75, 1.0, 1.25, 1.5, 2.0),
    sweet_spots=((1.0, 48), (2.25, 56), (1.0, 32)),
    accuracy_threshold=0.70,
    seed=0xD47E,
)

_PAPER = ExperimentProfile(
    name="paper",
    image_size=16,
    num_train=3000,
    num_test=500,
    attack_subset=200,
    snn_model="snn_lenet_mini",
    cnn_model="lenet_mini",
    fig1_snn_model="snn_cnn5",
    fig1_cnn_model="cnn5",
    time_steps_default=64,
    epochs=10,
    batch_size=32,
    learning_rate=5e-3,
    pgd_steps=10,
    v_thresholds=(0.25, 0.5, 0.75, 1.0, 1.25, 1.5, 1.75, 2.0, 2.25),
    time_windows=(8, 16, 24, 32, 40, 48, 56, 64, 72),
    grid_epsilons=(1.0, 1.5),
    curve_epsilons=(0.0, 0.25, 0.5, 0.75, 1.0, 1.25, 1.5, 1.75, 2.0),
    sweet_spots=((1.0, 48), (2.25, 56), (1.0, 32)),
    accuracy_threshold=0.70,
    seed=0xD47E,
)

_PROFILES = {p.name: p for p in (_MICRO, _MICRO_SEARCH, _SMOKE, _PAPER)}


def available_profiles() -> tuple[str, ...]:
    """Names accepted by :func:`get_profile`."""
    return tuple(sorted(_PROFILES))


def get_profile(name: str) -> ExperimentProfile:
    """Look up a profile by name."""
    try:
        profile = _PROFILES[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown profile {name!r}; available: {available_profiles()}"
        ) from None
    profile.validate()
    return profile
