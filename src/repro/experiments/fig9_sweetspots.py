"""Figure 9 — tracked sweet-spot combinations vs the LeNet-5 CNN.

Trains the spiking LeNet at the paper's three tracked combinations —
high robustness (1, 48), low robustness (2.25, 56), medium (1, 32) —
plus the equal-topology CNN, and sweeps the PGD budget for all four.

The paper's claims checked here:

* (1, 48) reaches far higher robustness than the CNN at large ε
  (up to 85 % in the paper);
* (2.25, 56) is *less* robust than the CNN — high clean accuracy does
  not guarantee robustness;
* (1, 32) has mediocre clean accuracy yet still beats the CNN for ε > 1.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.attacks.metrics import evaluate_clean_accuracy
from repro.experiments.profiles import ExperimentProfile, get_profile
from repro.experiments.workloads import (
    build_grid_model_factory,
    load_profile_data,
    make_profile_attack_builder,
)
from repro.models.registry import build_model
from repro.robustness.report import render_curve_table
from repro.robustness.security import RobustnessCurve, robustness_curve
from repro.training.trainer import Trainer
from repro.utils.logging import get_logger
from repro.utils.seeding import SeedSequence

__all__ = ["Fig9Result", "run_fig9"]

_logger = get_logger("experiments.fig9")


@dataclass(frozen=True)
class Fig9Result:
    """Robustness curves for the tracked combinations and the CNN."""

    epsilons: tuple[float, ...]
    snn_curves: dict[tuple[float, int], RobustnessCurve]
    cnn_curve: RobustnessCurve
    clean_accuracies: dict[str, float]

    def gap_vs_cnn(self, v_th: float, time_window: int) -> tuple[float, ...]:
        """(SNN − CNN) robustness per ε for one tracked combination."""
        curve = self.snn_curves[(float(v_th), int(time_window))]
        return tuple(
            s - c for s, c in zip(curve.robustness, self.cnn_curve.robustness)
        )

    def render(self) -> str:
        """Text rendering of the figure."""
        series: dict[str, tuple[float, ...]] = {"CNN LeNet": self.cnn_curve.robustness}
        for (v_th, t), curve in self.snn_curves.items():
            series[f"SNN (Vth={v_th:g}, T={t})"] = curve.robustness
        table = render_curve_table(
            self.epsilons,
            series,
            title="Figure 9 - robustness (%) of tracked (Vth, T) combos vs CNN",
        )
        extras = ["clean accuracies: " + ", ".join(
            f"{name}={acc * 100:.1f}%" for name, acc in self.clean_accuracies.items()
        )]
        return table + "\n" + "\n".join(extras)

    def as_dict(self) -> dict:
        """JSON-friendly representation."""
        return {
            "epsilons": list(self.epsilons),
            "cnn": self.cnn_curve.as_dict(),
            "snn": {
                f"{v_th:g},{t}": curve.as_dict()
                for (v_th, t), curve in self.snn_curves.items()
            },
            "clean_accuracies": dict(self.clean_accuracies),
        }


def run_fig9(profile: ExperimentProfile | str = "smoke", verbose: bool = False) -> Fig9Result:
    """Reproduce the Figure-9 sweet-spot tracking under ``profile``."""
    if isinstance(profile, str):
        profile = get_profile(profile)
    seeds = SeedSequence(profile.seed)
    train, test, _bounds = load_profile_data(profile)
    attack_subset = test.take(profile.attack_subset)
    training = profile.training_config()
    attack_builder = make_profile_attack_builder(profile)
    factory = build_grid_model_factory(profile)

    clean: dict[str, float] = {}

    cnn = build_model(
        profile.cnn_model, input_size=profile.image_size, rng=seeds.child_seed("fig9", "cnn")
    )
    if verbose:
        _logger.info("training CNN (%s)", profile.cnn_model)
    Trainer(cnn, training).fit(train)
    clean["cnn"] = evaluate_clean_accuracy(cnn, test)
    cnn_curve = robustness_curve(
        cnn, attack_subset, profile.curve_epsilons, attack_builder, label="cnn"
    )

    snn_curves: dict[tuple[float, int], RobustnessCurve] = {}
    for v_th, time_window in profile.sweet_spots:
        label = f"snn_vth{v_th:g}_T{time_window}"
        if verbose:
            _logger.info("training SNN Vth=%g T=%d", v_th, time_window)
        model = factory(v_th, time_window, seeds.child_seed("fig9", v_th, time_window))
        Trainer(model, training).fit(train)
        clean[label] = evaluate_clean_accuracy(model, test)
        snn_curves[(float(v_th), int(time_window))] = robustness_curve(
            model, attack_subset, profile.curve_epsilons, attack_builder, label=label
        )
    return Fig9Result(
        epsilons=tuple(profile.curve_epsilons),
        snn_curves=snn_curves,
        cnn_curve=cnn_curve,
        clean_accuracies=clean,
    )
