"""Figure 9 — tracked sweet-spot combinations vs the LeNet-5 CNN.

Trains the spiking LeNet at the paper's three tracked combinations —
high robustness (1, 48), low robustness (2.25, 56), medium (1, 32) —
plus the equal-topology CNN, and sweeps the PGD budget for all four.

The paper's claims checked here:

* (1, 48) reaches far higher robustness than the CNN at large ε
  (up to 85 % in the paper);
* (2.25, 56) is *less* robust than the CNN — high clean accuracy does
  not guarantee robustness;
* (1, 32) has mediocre clean accuracy yet still beats the CNN for ε > 1.

Each trained variant is one :class:`~repro.engine.sweep.SweepTask`
scheduled through :mod:`repro.engine`, so the four trainings parallelize
(``jobs``), checkpoint and resume (``cache_dir``/``resume``), and —
because trained weights are cached separately from sweep results — a
re-run with a different ε list skips retraining entirely.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from repro.engine.queue import DEFAULT_LEASE_TTL, QueueRunResult
from repro.engine.resilience import ResilienceConfig
from repro.engine.shard import ShardRunResult, ShardSpec
from repro.engine.sweep import SweepResult, SweepTask
from repro.experiments.profiles import ExperimentProfile, get_profile
from repro.experiments.sweeps import (
    build_fig9_context,
    build_fig9_tasks,
    run_sweep_schedule,
    shard_run_result,
)
from repro.robustness.report import render_curve_table
from repro.robustness.security import RobustnessCurve

__all__ = ["Fig9Result", "run_fig9"]


@dataclass(frozen=True)
class Fig9Result:
    """Robustness curves for the tracked combinations and the CNN."""

    epsilons: tuple[float, ...]
    snn_curves: dict[tuple[float, int], RobustnessCurve]
    cnn_curve: RobustnessCurve
    clean_accuracies: dict[str, float]
    metadata: dict = field(default_factory=dict)
    """Engine accounting (schedule stats, weight-cache reuse counts)."""

    def gap_vs_cnn(self, v_th: float, time_window: int) -> tuple[float, ...]:
        """(SNN − CNN) robustness per ε for one tracked combination."""
        curve = self.snn_curves[(float(v_th), int(time_window))]
        return tuple(
            s - c for s, c in zip(curve.robustness, self.cnn_curve.robustness)
        )

    def render(self) -> str:
        """Text rendering of the figure."""
        series: dict[str, tuple[float, ...]] = {"CNN LeNet": self.cnn_curve.robustness}
        for (v_th, t), curve in self.snn_curves.items():
            series[f"SNN (Vth={v_th:g}, T={t})"] = curve.robustness
        table = render_curve_table(
            self.epsilons,
            series,
            title="Figure 9 - robustness (%) of tracked (Vth, T) combos vs CNN",
        )
        extras = ["clean accuracies: " + ", ".join(
            f"{name}={acc * 100:.1f}%" for name, acc in self.clean_accuracies.items()
        )]
        return table + "\n" + "\n".join(extras)

    def as_dict(self) -> dict:
        """JSON-friendly representation."""
        return {
            "epsilons": list(self.epsilons),
            "cnn": self.cnn_curve.as_dict(),
            "snn": {
                f"{v_th:g},{t}": curve.as_dict()
                for (v_th, t), curve in self.snn_curves.items()
            },
            "clean_accuracies": dict(self.clean_accuracies),
            "metadata": dict(self.metadata),
        }


def _curve(task: SweepTask, result: SweepResult) -> RobustnessCurve:
    robustness = tuple(result.curves["pgd"][eps] for eps in task.epsilons)
    return RobustnessCurve(
        label=result.key,
        epsilons=task.epsilons,
        robustness=robustness,
        evaluations=(),
    )


def run_fig9(
    profile: ExperimentProfile | str = "smoke",
    verbose: bool = False,
    jobs: int = 1,
    cache_dir: str | Path | None = None,
    resume: bool = False,
    start_method: str = "auto",
    epsilons: tuple[float, ...] | None = None,
    shard: ShardSpec | None = None,
    queue_dir: str | Path | None = None,
    lease_ttl: float = DEFAULT_LEASE_TTL,
    resilience: ResilienceConfig | None = None,
) -> Fig9Result | ShardRunResult | QueueRunResult:
    """Reproduce the Figure-9 sweet-spot tracking under ``profile``.

    Parameters
    ----------
    profile:
        Experiment scale (name or :class:`ExperimentProfile`).
    verbose:
        Log one line per completed variant.
    jobs:
        Worker processes; each trained variant is one job.
    cache_dir:
        Directory for sweep checkpoints and trained-weight archives.
    resume:
        Reuse checkpointed sweeps and cached weights from ``cache_dir``.
    start_method:
        Pool backend (``auto``/``fork``/``spawn``); spawn workers rebuild
        the context from the profile name.
    epsilons:
        Override the profile's ε sweep.  With ``resume`` and a warm
        ``cache_dir`` this re-attacks cached trained models without
        retraining them.
    shard:
        Run only this :class:`~repro.engine.shard.ShardSpec`'s slice of
        the variants and return a
        :class:`~repro.engine.shard.ShardRunResult` summary instead of
        the figure — the figure is rendered later, from the merged
        caches, by an unsharded ``resume`` run.
    queue_dir:
        Join the dynamic work queue under ``<queue_dir>/fig9`` as one
        worker of an elastic fleet and return a
        :class:`~repro.engine.queue.QueueRunResult` summary; mutually
        exclusive with ``shard`` and requires ``cache_dir``.
    lease_ttl:
        Queue mode only: lease expiry (seconds) for work stealing.
    """
    if isinstance(profile, str):
        profile = get_profile(profile)
    tasks = build_fig9_tasks(profile, epsilons=epsilons)
    results, metadata = run_sweep_schedule(
        profile,
        build_fig9_context,
        tasks,
        "fig9",
        verbose=verbose,
        jobs=jobs,
        cache_dir=cache_dir,
        resume=resume,
        start_method=start_method,
        shard=shard,
        queue_dir=queue_dir,
        lease_ttl=lease_ttl,
        resilience=resilience,
    )
    if queue_dir is not None:
        return results  # the worker's QueueRunResult; no figure yet
    if shard is not None:
        return shard_run_result("fig9", shard, tasks, metadata)

    clean: dict[str, float] = {}
    snn_curves: dict[tuple[float, int], RobustnessCurve] = {}
    cnn_curve: RobustnessCurve | None = None
    for task, result in zip(tasks, results):
        clean[result.key] = result.clean_accuracy
        if task.kind == "fig9_cnn":
            cnn_curve = _curve(task, result)
        else:
            combo = (float(task.param("v_th")), int(task.param("time_window")))
            snn_curves[combo] = _curve(task, result)
    assert cnn_curve is not None, "fig9 task list lost its CNN comparator"
    return Fig9Result(
        epsilons=tasks[0].epsilons,
        snn_curves=snn_curves,
        cnn_curve=cnn_curve,
        clean_accuracies=clean,
        metadata=metadata,
    )
