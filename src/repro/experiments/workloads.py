"""Shared data/model preparation for the experiment runners.

Centralises the MNIST-style preprocessing: synthetic digits in [0, 1] are
normalized with the canonical MNIST constants, so adversarial budgets ε
live on the same scale as the paper's (ε ∈ [0, 2]); attacks project into
the normalized valid-pixel box.
"""

from __future__ import annotations

import numpy as np

from repro.attacks.pgd import PGD
from repro.data.dataset import ArrayDataset
from repro.data.synth_mnist import SynthConfig, SyntheticMNIST
from repro.data.transforms import MNIST_MEAN, MNIST_STD, Normalize, normalized_bounds
from repro.experiments.profiles import ExperimentProfile
from repro.models.registry import build_model
from repro.nn.module import Module
from repro.snn.neuron import LIFParameters

__all__ = [
    "build_grid_model_factory",
    "load_profile_data",
    "make_profile_attack_builder",
]


def load_profile_data(
    profile: ExperimentProfile,
) -> tuple[ArrayDataset, ArrayDataset, tuple[float, float]]:
    """Generate and normalize the profile's train/test sets.

    Returns ``(train, test, (clip_min, clip_max))`` where the bounds are
    the normalized valid-pixel box used by attack projection.
    """
    generator = SyntheticMNIST(
        config=SynthConfig(image_size=profile.image_size), seed=profile.seed
    )
    normalize = Normalize(MNIST_MEAN, MNIST_STD)
    train = generator.generate(profile.num_train, "train")
    test = generator.generate(profile.num_test, "test")
    train = ArrayDataset(normalize(train.images).astype(np.float32), train.labels)
    test = ArrayDataset(normalize(test.images).astype(np.float32), test.labels)
    return train, test, normalized_bounds()


def make_profile_attack_builder(profile: ExperimentProfile, seed: int | None = None):
    """Return ``attack_builder(eps) -> PGD`` bound to the profile settings."""
    clip_min, clip_max = normalized_bounds()

    def build(epsilon: float) -> PGD:
        return PGD(
            epsilon,
            steps=profile.pgd_steps,
            clip_min=clip_min,
            clip_max=clip_max,
            rng=profile.seed if seed is None else seed,
        )

    return build


def build_grid_model_factory(profile: ExperimentProfile):
    """Return the Algorithm-1 model factory ``(v_th, T, seed) -> Module``.

    Each grid cell gets a freshly initialised spiking model with its own
    threshold, time window and seed.
    """

    def factory(v_th: float, time_window: int, seed: int) -> Module:
        return build_model(
            profile.snn_model,
            input_size=profile.image_size,
            time_steps=int(time_window),
            lif_params=LIFParameters(v_th=float(v_th)),
            input_scale=profile.input_scale,
            rng=seed,
        )

    return factory
