"""Ablation studies on the reproduction's design choices.

These go beyond the paper's figures: they quantify how much the measured
"inherent robustness" depends on substrate choices the paper inherited
implicitly from Norse (surrogate sharpness, input encoding, reset mode)
and contextualise PGD against weaker attacks and noise controls.

Every ablation fixes one reference combination ``(Vth, T)`` (the paper's
high-robustness sweet spot by default) and varies a single factor.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.attacks.metrics import evaluate_attack, evaluate_clean_accuracy
from repro.data.transforms import normalized_bounds
from repro.experiments.profiles import ExperimentProfile, get_profile
from repro.experiments.workloads import load_profile_data
from repro.models.registry import build_model
from repro.robustness.config import make_attack
from repro.robustness.report import render_curve_table
from repro.snn.encoding import PoissonEncoder
from repro.snn.neuron import LIFParameters
from repro.training.trainer import Trainer
from repro.utils.seeding import SeedSequence

__all__ = [
    "AblationResult",
    "run_attack_ablation",
    "run_encoding_ablation",
    "run_reset_ablation",
    "run_surrogate_ablation",
]


@dataclass(frozen=True)
class AblationResult:
    """Robustness of several variants over a shared ε sweep."""

    factor: str
    epsilons: tuple[float, ...]
    variants: dict[str, tuple[float, ...]]
    clean_accuracies: dict[str, float]

    def render(self) -> str:
        """Text table of the ablation."""
        table = render_curve_table(
            self.epsilons,
            self.variants,
            title=f"Ablation [{self.factor}] - robustness (%) by epsilon",
        )
        cleans = ", ".join(
            f"{name}={acc * 100:.1f}%" for name, acc in self.clean_accuracies.items()
        )
        return f"{table}\nclean accuracies: {cleans}"

    def as_dict(self) -> dict:
        """JSON-friendly representation."""
        return {
            "factor": self.factor,
            "epsilons": list(self.epsilons),
            "variants": {k: list(v) for k, v in self.variants.items()},
            "clean_accuracies": dict(self.clean_accuracies),
        }


def _ablation_epsilons(profile: ExperimentProfile) -> tuple[float, ...]:
    return tuple(profile.grid_epsilons)


def _train_and_sweep(
    model,
    profile: ExperimentProfile,
    train_set,
    attack_subset,
    epsilons,
    attack_name: str = "pgd",
) -> tuple[float, tuple[float, ...]]:
    clip_min, clip_max = normalized_bounds()
    Trainer(model, profile.training_config()).fit(train_set)
    clean = evaluate_clean_accuracy(model, attack_subset)
    robustness = []
    for eps in epsilons:
        attack = make_attack(
            attack_name,
            eps,
            steps=profile.pgd_steps,
            seed=profile.seed,
            clip_min=clip_min,
            clip_max=clip_max,
        )
        robustness.append(evaluate_attack(model, attack, attack_subset).robustness)
    return clean, tuple(robustness)


def _reference_builder(profile: ExperimentProfile, seeds: SeedSequence, **overrides):
    """Reference SNN at (Vth = 1, T = profile default) for single-factor
    ablations — the default window keeps the ablation suite affordable."""
    v_th = 1.0
    params = overrides.pop("lif_params", LIFParameters(v_th=v_th))
    return build_model(
        profile.snn_model,
        input_size=profile.image_size,
        time_steps=overrides.pop("time_steps", profile.time_steps_default),
        lif_params=params,
        input_scale=profile.input_scale,
        rng=seeds.child_seed("ablation", repr(sorted(overrides.items())), v_th),
        **overrides,
    )


def run_surrogate_ablation(
    profile: ExperimentProfile | str = "smoke",
    families: tuple[str, ...] = ("superspike", "triangle", "arctan"),
) -> AblationResult:
    """A1: how the surrogate-gradient family changes measured robustness.

    The same family is used for training *and* for the white-box attack
    gradient (the attacker differentiates the true deployed graph), so
    sharper surrogates both hamper training and mask attack gradients.
    """
    if isinstance(profile, str):
        profile = get_profile(profile)
    seeds = SeedSequence(profile.seed)
    train, test, _ = load_profile_data(profile)
    subset = test.take(profile.attack_subset)
    epsilons = _ablation_epsilons(profile)
    v_th, _t = profile.sweet_spots[0]
    variants: dict[str, tuple[float, ...]] = {}
    cleans: dict[str, float] = {}
    for family in families:
        params = LIFParameters(v_th=v_th, surrogate=family)
        model = _reference_builder(profile, seeds, lif_params=params)
        clean, curve = _train_and_sweep(model, profile, train, subset, epsilons)
        variants[family] = curve
        cleans[family] = clean
    return AblationResult("surrogate", epsilons, variants, cleans)


def run_encoding_ablation(profile: ExperimentProfile | str = "smoke") -> AblationResult:
    """A2: constant-current vs Poisson rate encoding under PGD."""
    if isinstance(profile, str):
        profile = get_profile(profile)
    seeds = SeedSequence(profile.seed)
    train, test, _ = load_profile_data(profile)
    subset = test.take(profile.attack_subset)
    epsilons = _ablation_epsilons(profile)
    variants: dict[str, tuple[float, ...]] = {}
    cleans: dict[str, float] = {}

    constant = _reference_builder(profile, seeds)
    clean, curve = _train_and_sweep(constant, profile, train, subset, epsilons)
    variants["constant_current"] = curve
    cleans["constant_current"] = clean

    poisson_model = _reference_builder(profile, seeds)
    # Poisson rate coding expects non-negative intensities; shift the
    # normalized inputs by scaling probabilities against the positive range.
    poisson_model.encoder = PoissonEncoder(
        scale=0.35, rng=seeds.child_seed("ablation", "poisson")
    )
    clean, curve = _train_and_sweep(poisson_model, profile, train, subset, epsilons)
    variants["poisson_rate"] = curve
    cleans["poisson_rate"] = clean
    return AblationResult("encoding", epsilons, variants, cleans)


def run_reset_ablation(profile: ExperimentProfile | str = "smoke") -> AblationResult:
    """A4: hard (reset-to-zero) vs soft (subtractive) membrane reset."""
    if isinstance(profile, str):
        profile = get_profile(profile)
    seeds = SeedSequence(profile.seed)
    train, test, _ = load_profile_data(profile)
    subset = test.take(profile.attack_subset)
    epsilons = _ablation_epsilons(profile)
    v_th, _t = profile.sweet_spots[0]
    variants: dict[str, tuple[float, ...]] = {}
    cleans: dict[str, float] = {}
    for mode in ("hard", "soft"):
        params = LIFParameters(v_th=v_th, reset_mode=mode)
        model = _reference_builder(profile, seeds, lif_params=params)
        clean, curve = _train_and_sweep(model, profile, train, subset, epsilons)
        variants[f"reset_{mode}"] = curve
        cleans[f"reset_{mode}"] = clean
    return AblationResult("reset_mode", epsilons, variants, cleans)


def run_attack_ablation(
    profile: ExperimentProfile | str = "smoke",
    attacks: tuple[str, ...] = ("pgd", "bim", "fgsm", "sign_noise", "uniform_noise"),
) -> AblationResult:
    """A3: attack families on one trained reference SNN.

    Expected ordering: PGD >= BIM >= FGSM >> noise controls.  A PGD that
    fails to beat the magnitude-matched sign-noise control would indicate
    fully masked gradients.
    """
    if isinstance(profile, str):
        profile = get_profile(profile)
    seeds = SeedSequence(profile.seed)
    train, test, _ = load_profile_data(profile)
    subset = test.take(profile.attack_subset)
    epsilons = _ablation_epsilons(profile)
    clip_min, clip_max = normalized_bounds()
    model = _reference_builder(profile, seeds)
    Trainer(model, profile.training_config()).fit(train)
    clean = evaluate_clean_accuracy(model, subset)
    variants: dict[str, tuple[float, ...]] = {}
    for name in attacks:
        robustness = []
        for eps in epsilons:
            attack = make_attack(
                name,
                eps,
                steps=profile.pgd_steps,
                seed=profile.seed,
                clip_min=clip_min,
                clip_max=clip_max,
            )
            robustness.append(evaluate_attack(model, attack, subset).robustness)
        variants[name] = tuple(robustness)
    return AblationResult("attack_family", epsilons, variants, {"reference_snn": clean})
