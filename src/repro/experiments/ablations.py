"""Ablation studies on the reproduction's design choices.

These go beyond the paper's figures: they quantify how much the measured
"inherent robustness" depends on substrate choices the paper inherited
implicitly from Norse (surrogate sharpness, input encoding, reset mode)
and contextualise PGD against weaker attacks and noise controls
(Marchisio et al.'s comparative-study angle).

Every ablation fixes one reference combination ``(Vth, T)`` (the paper's
high-robustness sweet spot by default) and varies a single factor.

All four factors run as :class:`~repro.engine.sweep.SweepTask` jobs on a
*shared* job context, so :func:`run_ablation_suite` parallelizes across
the whole suite at once (``jobs``), checkpoints and resumes every variant
(``cache_dir``/``resume``), and reuses cached trained weights when only
the security sweep changed.  The per-factor ``run_*_ablation`` functions
are thin wrappers kept for notebooks, benchmarks and backward
compatibility.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from repro.engine.queue import DEFAULT_LEASE_TTL, QueueRunResult
from repro.engine.resilience import ResilienceConfig
from repro.engine.shard import ShardRunResult, ShardSpec
from repro.engine.sweep import SweepResult, SweepTask
from repro.experiments.profiles import ExperimentProfile, get_profile
from repro.experiments.sweeps import (
    ABLATION_FACTORS,
    DEFAULT_ATTACK_FAMILIES,
    DEFAULT_SURROGATE_FAMILIES,
    build_ablation_context,
    build_ablation_tasks,
    run_sweep_schedule,
    shard_run_result,
)
from repro.robustness.report import render_curve_table

__all__ = [
    "ABLATION_FACTORS",
    "AblationResult",
    "run_ablation_suite",
    "run_attack_ablation",
    "run_encoding_ablation",
    "run_reset_ablation",
    "run_surrogate_ablation",
]

_FACTOR_LABELS = {
    "surrogate": "surrogate",
    "encoding": "encoding",
    "reset": "reset_mode",
    "attack": "attack_family",
}
"""CLI factor name -> the factor string recorded in results (historical)."""


@dataclass(frozen=True)
class AblationResult:
    """Robustness of several variants over a shared ε sweep."""

    factor: str
    epsilons: tuple[float, ...]
    variants: dict[str, tuple[float, ...]]
    clean_accuracies: dict[str, float]
    metadata: dict = field(default_factory=dict)
    """Engine accounting (schedule stats, weight-cache reuse counts)."""

    def render(self) -> str:
        """Text table of the ablation."""
        table = render_curve_table(
            self.epsilons,
            self.variants,
            title=f"Ablation [{self.factor}] - robustness (%) by epsilon",
        )
        cleans = ", ".join(
            f"{name}={acc * 100:.1f}%" for name, acc in self.clean_accuracies.items()
        )
        return f"{table}\nclean accuracies: {cleans}"

    def as_dict(self) -> dict:
        """JSON-friendly representation."""
        return {
            "factor": self.factor,
            "epsilons": list(self.epsilons),
            "variants": {k: list(v) for k, v in self.variants.items()},
            "clean_accuracies": dict(self.clean_accuracies),
            "metadata": dict(self.metadata),
        }


def _group_by_factor(
    tasks: list[SweepTask],
    results: list[SweepResult],
    metadata: dict,
) -> dict[str, AblationResult]:
    """Regroup the flat engine output into one result per factor."""
    grouped: dict[str, AblationResult] = {}
    for factor in ABLATION_FACTORS:
        pairs = [
            (task, result)
            for task, result in zip(tasks, results)
            if task.key.startswith(f"{factor}:")
        ]
        if not pairs:
            continue
        epsilons = pairs[0][0].epsilons
        variants: dict[str, tuple[float, ...]] = {}
        cleans: dict[str, float] = {}
        for task, result in pairs:
            label = task.key.split(":", 1)[1]
            cleans[label] = result.clean_accuracy
            if factor == "attack":
                # One trained reference, one curve per attack family.
                for attack in task.attacks:
                    variants[attack] = tuple(
                        result.curves[attack][eps] for eps in epsilons
                    )
            else:
                variants[label] = tuple(
                    result.curves["pgd"][eps] for eps in epsilons
                )
        grouped[factor] = AblationResult(
            factor=_FACTOR_LABELS[factor],
            epsilons=epsilons,
            variants=variants,
            clean_accuracies=cleans,
            metadata=dict(metadata),
        )
    return grouped


def run_ablation_suite(
    profile: ExperimentProfile | str = "smoke",
    factors: tuple[str, ...] = ABLATION_FACTORS,
    verbose: bool = False,
    jobs: int = 1,
    cache_dir: str | Path | None = None,
    resume: bool = False,
    start_method: str = "auto",
    epsilons: tuple[float, ...] | None = None,
    surrogate_families: tuple[str, ...] = DEFAULT_SURROGATE_FAMILIES,
    attack_families: tuple[str, ...] = DEFAULT_ATTACK_FAMILIES,
    shard: ShardSpec | None = None,
    queue_dir: str | Path | None = None,
    lease_ttl: float = DEFAULT_LEASE_TTL,
    resilience: ResilienceConfig | None = None,
) -> dict[str, AblationResult] | ShardRunResult | QueueRunResult:
    """Run the requested ablation factors as one scheduled job batch.

    Returns ``{factor: AblationResult}`` keyed by the CLI factor names
    (``surrogate``, ``encoding``, ``reset``, ``attack``).

    Parameters mirror :func:`~repro.experiments.fig9_sweetspots.run_fig9`:
    ``jobs`` parallelizes across *all* requested factors at once,
    ``cache_dir``/``resume`` checkpoint and resume individual variants,
    and ``epsilons`` overrides the profile's sweep — with cached weights
    this re-attacks trained models without retraining them.  With
    ``shard``, only the shard's slice of the suite runs and a
    :class:`~repro.engine.shard.ShardRunResult` summary is returned
    instead of the per-factor tables.  With ``queue_dir``, the run joins
    the dynamic work queue under ``<queue_dir>/ablation`` as one worker
    of an elastic fleet and returns its
    :class:`~repro.engine.queue.QueueRunResult`.
    """
    if isinstance(profile, str):
        profile = get_profile(profile)
    # Dedupe while preserving order: a repeated --factor must not
    # schedule (and train) the same variants twice.
    factors = tuple(dict.fromkeys(factors))
    tasks = build_ablation_tasks(
        profile,
        factors=factors,
        surrogate_families=surrogate_families,
        attack_families=attack_families,
        epsilons=epsilons,
    )
    # Non-default families change the task list but not the context, so
    # the spawn spec (which only rebuilds the context) stays valid.
    results, metadata = run_sweep_schedule(
        profile,
        build_ablation_context,
        tasks,
        "ablation",
        verbose=verbose,
        jobs=jobs,
        cache_dir=cache_dir,
        resume=resume,
        start_method=start_method,
        shard=shard,
        queue_dir=queue_dir,
        lease_ttl=lease_ttl,
        resilience=resilience,
    )
    if queue_dir is not None:
        return results  # the worker's QueueRunResult; no tables yet
    if shard is not None:
        return shard_run_result("ablation", shard, tasks, metadata)
    return _group_by_factor(tasks, results, metadata)


def run_surrogate_ablation(
    profile: ExperimentProfile | str = "smoke",
    families: tuple[str, ...] = DEFAULT_SURROGATE_FAMILIES,
    **engine_kwargs,
) -> AblationResult:
    """A1: how the surrogate-gradient family changes measured robustness.

    The same family is used for training *and* for the white-box attack
    gradient (the attacker differentiates the true deployed graph), so
    sharper surrogates both hamper training and mask attack gradients.
    """
    return run_ablation_suite(
        profile, factors=("surrogate",), surrogate_families=families, **engine_kwargs
    )["surrogate"]


def run_encoding_ablation(
    profile: ExperimentProfile | str = "smoke", **engine_kwargs
) -> AblationResult:
    """A2: constant-current vs Poisson rate encoding under PGD."""
    return run_ablation_suite(profile, factors=("encoding",), **engine_kwargs)[
        "encoding"
    ]


def run_reset_ablation(
    profile: ExperimentProfile | str = "smoke", **engine_kwargs
) -> AblationResult:
    """A4: hard (reset-to-zero) vs soft (subtractive) membrane reset."""
    return run_ablation_suite(profile, factors=("reset",), **engine_kwargs)["reset"]


def run_attack_ablation(
    profile: ExperimentProfile | str = "smoke",
    attacks: tuple[str, ...] = DEFAULT_ATTACK_FAMILIES,
    **engine_kwargs,
) -> AblationResult:
    """A3: attack families on one trained reference SNN.

    Expected ordering: PGD >= BIM >= FGSM >> noise controls.  A PGD that
    fails to beat the magnitude-matched sign-noise control would indicate
    fully masked gradients.
    """
    return run_ablation_suite(
        profile, factors=("attack",), attack_families=attacks, **engine_kwargs
    )["attack"]
