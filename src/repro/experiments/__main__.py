"""Module entry point for ``python -m repro.experiments``.

The ``__main__`` guard is load-bearing: ``spawn`` worker processes
re-import the parent's main module, and an unguarded ``sys.exit(main())``
would re-run the whole CLI inside every worker.
"""

import os
import sys

from repro.experiments.runner import main

if __name__ == "__main__":
    try:
        code = main()
    except BrokenPipeError:
        # Downstream consumer (e.g. `... | head`) closed the pipe early;
        # exit quietly with the conventional SIGPIPE status instead of a
        # traceback.  Point stdout at devnull first so the interpreter's
        # shutdown flush doesn't raise the same error again (the recipe
        # from the Python signal docs).
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        code = 141
    sys.exit(code)
