"""Figures 6, 7 and 8 — the (Vth, T) grid exploration.

One run of Algorithm 1 produces all three artifacts:

* Fig. 6 — clean-accuracy heat map (learnability study);
* Fig. 7 — robustness heat map under PGD ε = 1;
* Fig. 8 — robustness heat map under PGD ε = 1.5.
"""

from __future__ import annotations

from pathlib import Path

from repro.engine import CellCache, context_fingerprint
from repro.experiments.profiles import ExperimentProfile, get_profile
from repro.experiments.sweeps import build_grid_context, spawn_spec_for
from repro.robustness.exploration import RobustnessExplorer
from repro.robustness.report import render_heatmap
from repro.robustness.results import ExplorationResult

__all__ = ["fig6_table", "fig7_table", "fig8_table", "run_grid_exploration"]


def run_grid_exploration(
    profile: ExperimentProfile | str = "smoke",
    verbose: bool = False,
    jobs: int = 1,
    cache_dir: str | Path | None = None,
    resume: bool = False,
    start_method: str = "auto",
) -> ExplorationResult:
    """Run Algorithm 1 over the profile's grid (Figs. 6-8 in one pass).

    Parameters
    ----------
    profile:
        Experiment scale (name or :class:`ExperimentProfile`).
    verbose:
        Log one line per completed cell.
    jobs:
        Worker processes for cell evaluation (``1`` = serial; parallel
        runs produce bitwise-identical cell values).
    cache_dir:
        Directory for per-cell JSON checkpoints and trained-weight
        archives.  When set, completed cells and their weights are
        written there as the run progresses.
    resume:
        Reuse checkpointed cells (and cached trained weights, for cells
        whose checkpoint is missing but whose training already ran) from
        ``cache_dir`` instead of recomputing them.
    start_method:
        Pool backend (``auto``/``fork``/``spawn``); spawn workers rebuild
        the job context from the profile name.
    """
    if resume and cache_dir is None:
        raise ValueError("resume=True requires cache_dir to resume from")
    if isinstance(profile, str):
        profile = get_profile(profile)
    context = build_grid_context(profile, cache_dir=cache_dir, reuse_weights=resume)
    explorer = RobustnessExplorer(
        model_factory=context.model_factory,
        train_set=context.train_set,
        test_set=context.test_set,
        config=context.config,
    )
    cache = None
    if cache_dir is not None:
        # The factory cannot be hashed; tags pin everything it derives from.
        fingerprint = context_fingerprint(
            explorer.context,
            tags={
                "experiment": "fig678_grid",
                "profile": profile.name,
                "model": profile.snn_model,
                "image_size": profile.image_size,
                "input_scale": profile.input_scale,
            },
        )
        cache = CellCache(cache_dir, fingerprint)
    spec = spawn_spec_for("build_grid_context", profile, cache_dir, resume)
    result = explorer.run(
        verbose=verbose,
        jobs=jobs,
        cache=cache,
        resume=resume,
        start_method=start_method,
        context_spec=spec,
        weight_cache=context.weight_cache,
    )
    result.metadata["profile"] = profile.name
    return result


def fig6_table(result: ExplorationResult) -> str:
    """Render the Figure-6 learnability heat map."""
    return render_heatmap(
        result.accuracy_grid(),
        result.row_labels(),
        result.column_labels(),
        title="Figure 6 - clean accuracy (%) per (Vth, T)",
    )


def fig7_table(result: ExplorationResult, epsilon: float = 1.0) -> str:
    """Render the Figure-7 security heat map (PGD ε = 1)."""
    return render_heatmap(
        result.robustness_grid(epsilon),
        result.row_labels(),
        result.column_labels(),
        title=f"Figure 7 - robustness (%) under PGD eps={epsilon:g} per (Vth, T)",
    )


def fig8_table(result: ExplorationResult, epsilon: float = 1.5) -> str:
    """Render the Figure-8 security heat map (PGD ε = 1.5)."""
    return render_heatmap(
        result.robustness_grid(epsilon),
        result.row_labels(),
        result.column_labels(),
        title=f"Figure 8 - robustness (%) under PGD eps={epsilon:g} per (Vth, T)",
    )
