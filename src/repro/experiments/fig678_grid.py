"""Figures 6, 7 and 8 — the (Vth, T) grid exploration.

One run of Algorithm 1 produces all three artifacts:

* Fig. 6 — clean-accuracy heat map (learnability study);
* Fig. 7 — robustness heat map under PGD ε = 1;
* Fig. 8 — robustness heat map under PGD ε = 1.5.
"""

from __future__ import annotations

from pathlib import Path

from repro.engine import CellCache, context_fingerprint
from repro.engine.costs import (
    cached_cell_costs,
    cell_deadline_estimator,
    order_cell_tasks,
)
from repro.engine.job import run_cell_task
from repro.engine.queue import (
    DEFAULT_LEASE_TTL,
    QueueRunResult,
    run_queued_tasks,
)
from repro.engine.resilience import ResilienceConfig
from repro.engine.scheduler import run_cell_tasks
from repro.engine.search import (
    SearchConfig,
    SearchResult,
    derive_schedule,
    run_halving_search,
)
from repro.engine.stacking import run_stacked_cell_tasks
from repro.engine.shard import (
    ShardRunResult,
    ShardSpec,
    record_durable_manifest,
)
from repro.experiments.profiles import ExperimentProfile, get_profile
from repro.experiments.sweeps import build_grid_context, spawn_spec_for
from repro.robustness.exploration import RobustnessExplorer
from repro.robustness.report import render_heatmap
from repro.robustness.results import ExplorationResult
from repro.utils.logging import get_logger

__all__ = [
    "fig6_table",
    "fig7_table",
    "fig8_table",
    "grid_search_tags",
    "run_grid_exploration",
    "run_grid_search",
]

_logger = get_logger("experiments.grid")


def _run_grid_shard(
    explorer: RobustnessExplorer,
    context,
    cache: CellCache | None,
    cache_dir: str | Path | None,
    shard: ShardSpec,
    profile: ExperimentProfile,
    verbose: bool,
    jobs: int,
    resume: bool,
    start_method: str,
    spec,
    stack: int = 1,
) -> ShardRunResult:
    """One shard's slice of the grid: compute + checkpoint, no figure.

    The full heat maps need every cell; a shard only owns ``index mod
    count`` of them, so it returns a completion summary and relies on
    ``cache merge`` + an unsharded ``--resume`` run for rendering.
    """
    tasks = explorer.tasks()
    owned = len(shard.partition(tasks))
    completed: list[int] = []

    def progress(task, cell, from_cache: bool) -> None:
        completed.append(task.index)
        if verbose:
            _logger.info(
                "[%d/%d] Vth=%g T=%d acc=%.3f%s",
                len(completed), owned, task.v_th, task.time_window,
                cell.clean_accuracy, " (cached)" if from_cache else "",
            )

    manifest_path = None
    try:
        if stack > 1:
            _cells, stats = run_stacked_cell_tasks(
                context,
                tasks,
                stack=stack,
                cache=cache,
                resume=resume,
                progress=progress,
                shard=shard,
            )
        else:
            costs = cached_cell_costs(cache.directory) if cache is not None else None
            _cells, stats = run_cell_tasks(
                context,
                tasks,
                jobs=jobs,
                cache=cache,
                resume=resume,
                progress=progress,
                start_method=start_method,
                context_spec=spec,
                shard=shard,
                pending_order=lambda pending: order_cell_tasks(pending, costs),
            )
    finally:
        # Even an interrupted shard leaves an accurate completion record
        # for the coordinator's `cache verify`.
        if cache is not None:
            manifest_path = record_durable_manifest(
                cache_dir, cache, "grid", tasks, shard
            )
    return ShardRunResult(
        experiment="grid",
        shard=shard,
        task_count=len(tasks),
        completed=tuple(completed),
        manifest_path=manifest_path,
        metadata={"profile": profile.name, "engine": stats.as_dict()},
    )


def _run_grid_queue(
    explorer: RobustnessExplorer,
    context,
    cache: CellCache,
    cache_dir: str | Path,
    queue_dir: Path,
    lease_ttl: float,
    profile: ExperimentProfile,
    verbose: bool,
    resume: bool,
    stack: int,
    resilience: ResilienceConfig | None = None,
) -> QueueRunResult:
    """One worker of a dynamic grid fleet: claim, compute, commit.

    The queue sibling of :func:`_run_grid_shard` — the figure is
    rendered later by a ``--resume`` run against the shared cache, once
    ``cache watch`` (or ``cache verify``) says the queue is complete.
    """
    tasks = explorer.tasks()
    served = 0

    def progress(task, cell, from_cache: bool) -> None:
        nonlocal served
        served += 1
        if verbose:
            _logger.info(
                "[queue %d] Vth=%g T=%d acc=%.3f%s",
                served, task.v_th, task.time_window,
                cell.clean_accuracy, " (cached)" if from_cache else "",
            )

    costs = cached_cell_costs(cache.directory)
    supervision = resilience if resilience is not None else ResilienceConfig()
    result, _stats = run_queued_tasks(
        context,
        tasks,
        run_cell_task,
        cache,
        queue_dir,
        experiment="grid",
        cache_dir=cache_dir,
        resume=resume,
        progress=progress,
        lease_ttl=lease_ttl,
        pending_order=lambda pending: order_cell_tasks(pending, costs),
        stack=stack,
        resilience=supervision,
        task_deadline=cell_deadline_estimator(
            costs,
            multiplier=supervision.watchdog_multiplier,
            floor=supervision.watchdog_floor,
        ),
    )
    result.metadata["profile"] = profile.name
    return result


def run_grid_exploration(
    profile: ExperimentProfile | str = "smoke",
    verbose: bool = False,
    jobs: int = 1,
    cache_dir: str | Path | None = None,
    resume: bool = False,
    start_method: str = "auto",
    shard: ShardSpec | None = None,
    stack: int = 1,
    queue_dir: str | Path | None = None,
    lease_ttl: float = DEFAULT_LEASE_TTL,
    resilience: ResilienceConfig | None = None,
) -> ExplorationResult | ShardRunResult | QueueRunResult:
    """Run Algorithm 1 over the profile's grid (Figs. 6-8 in one pass).

    Parameters
    ----------
    profile:
        Experiment scale (name or :class:`ExperimentProfile`).
    verbose:
        Log one line per completed cell.
    jobs:
        Worker processes for cell evaluation (``1`` = serial; parallel
        runs produce bitwise-identical cell values).
    cache_dir:
        Directory for per-cell JSON checkpoints and trained-weight
        archives.  When set, completed cells and their weights are
        written there as the run progresses.
    resume:
        Reuse checkpointed cells (and cached trained weights, for cells
        whose checkpoint is missing but whose training already ran) from
        ``cache_dir`` instead of recomputing them.
    start_method:
        Pool backend (``auto``/``fork``/``spawn``); spawn workers rebuild
        the job context from the profile name.
    shard:
        Run only this :class:`~repro.engine.shard.ShardSpec`'s slice of
        the grid cells and return a
        :class:`~repro.engine.shard.ShardRunResult` summary instead of
        the heat maps — the multi-host path: each host runs one shard
        into its own ``cache_dir``, the directories are merged with
        ``cache merge``, and an unsharded ``resume`` run renders the
        figures from the union.
    stack:
        Pack up to ``stack`` compatible grid cells into one
        :class:`~repro.snn.stack.VariantStack` fused pass — bitwise
        identical per-cell results, sublinear wall-clock in the cell
        count.  Stacked execution is in-process (``jobs``/
        ``start_method`` do not apply); it composes with ``shard`` (the
        shard's slice is packed) and with ``cache_dir``/``resume``
        (checkpoints and weight archives stay per-cell and
        fingerprint-identical to the unstacked path).
    queue_dir:
        Join the dynamic work queue rooted at this directory (the grid
        queue lives in its ``grid/`` subdirectory) as one worker of an
        elastic fleet, and return a
        :class:`~repro.engine.queue.QueueRunResult` summary instead of
        the heat maps.  Mutually exclusive with ``shard`` (the static
        pre-partitioned mode) and requires ``cache_dir`` — the shared
        checkpoint directory is how workers exchange results.
    lease_ttl:
        Queue mode only: seconds without a heartbeat after which another
        worker may steal a task lease from a presumed-dead owner.
    resilience:
        Queue mode only: supervision knobs (attempt budget before
        quarantine, backoff shape, watchdog deadline pricing); defaults
        to :class:`~repro.engine.resilience.ResilienceConfig`'s.
    """
    if resume and cache_dir is None:
        raise ValueError("resume=True requires cache_dir to resume from")
    if queue_dir is not None and shard is not None:
        raise ValueError("queue_dir (dynamic fleet) conflicts with shard (static)")
    if queue_dir is not None and cache_dir is None:
        raise ValueError("queue_dir requires cache_dir: the shared checkpoint "
                         "directory is how queue workers exchange results")
    if isinstance(profile, str):
        profile = get_profile(profile)
    context = build_grid_context(profile, cache_dir=cache_dir, reuse_weights=resume)
    explorer = RobustnessExplorer(
        model_factory=context.model_factory,
        train_set=context.train_set,
        test_set=context.test_set,
        config=context.config,
    )
    cache = None
    if cache_dir is not None:
        # The factory cannot be hashed; tags pin everything it derives from.
        fingerprint = context_fingerprint(
            explorer.context, tags=grid_search_tags(profile)
        )
        cache = CellCache(cache_dir, fingerprint)
    if queue_dir is not None:
        return _run_grid_queue(
            explorer, context, cache, cache_dir, Path(queue_dir) / "grid",
            lease_ttl, profile, verbose, resume, stack,
            resilience=resilience,
        )
    spec = spawn_spec_for("build_grid_context", profile, cache_dir, resume)
    if shard is not None:
        return _run_grid_shard(
            explorer, context, cache, cache_dir, shard, profile,
            verbose, jobs, resume, start_method, spec, stack=stack,
        )
    result = explorer.run(
        verbose=verbose,
        jobs=jobs,
        cache=cache,
        resume=resume,
        start_method=start_method,
        context_spec=spec,
        weight_cache=context.weight_cache,
        stack=stack,
    )
    result.metadata["profile"] = profile.name
    if cache is not None:
        # Unsharded runs record the degenerate 0/1 shard, so any cache
        # directory answers `cache verify` with a completion claim.
        record_durable_manifest(cache_dir, cache, "grid", explorer.tasks(), None)
    return result


def grid_search_tags(profile: ExperimentProfile) -> dict:
    """The grid experiment's cache-identity tags, shared with the search.

    The guided search caches its rung checkpoints under these same tags
    (plus its own ``search``/``budget``/``warm_plan`` qualifiers), so the
    artifacts live alongside — but never collide with — the exhaustive
    grid's in one cache directory.
    """
    return {
        "experiment": "fig678_grid",
        "profile": profile.name,
        "model": profile.snn_model,
        "image_size": profile.image_size,
        "input_scale": profile.input_scale,
    }


def run_grid_search(
    profile: ExperimentProfile | str = "smoke",
    search: SearchConfig | None = None,
    verbose: bool = False,
    jobs: int = 1,
    cache_dir: str | Path | None = None,
    resume: bool = False,
    start_method: str = "auto",
    stack: int = 1,
    queue_dir: str | Path | None = None,
    lease_ttl: float = DEFAULT_LEASE_TTL,
) -> SearchResult:
    """Guided (successive-halving) replacement for the exhaustive grid.

    Same measurement recipe as :func:`run_grid_exploration` — identical
    context, seeds and attacked-accuracy metrics per cell — but cells are
    first screened on small epoch budgets and only the promising fraction
    graduates to the full budget, warm-starting from cached lower-budget
    weights along the way (see :mod:`repro.engine.search`).  Requires
    ``cache_dir``; composes with ``jobs``, ``stack`` and ``queue_dir``
    (the search queue roots at ``<queue_dir>/grid-search`` so a guided
    fleet never crosses wires with an exhaustive one).  Static sharding
    is deliberately unsupported: promotions need every cell of a rung.

    Returns a :class:`~repro.engine.search.SearchResult`; its
    ``exploration()`` view renders through the usual Fig. 6-8 tables
    (pruned cells show as gaps — that is the saving).
    """
    if isinstance(profile, str):
        profile = get_profile(profile)
    if search is None:
        search = SearchConfig(
            schedule=derive_schedule(profile.training_config().epochs)
        )
    context = build_grid_context(profile, cache_dir=None, reuse_weights=False)
    served = 0

    def progress(task, cell, from_cache: bool) -> None:
        nonlocal served
        served += 1
        if verbose:
            _logger.info(
                "[search %d] Vth=%g T=%d acc=%.3f%s",
                served, task.v_th, task.time_window,
                cell.clean_accuracy, " (cached)" if from_cache else "",
            )

    result = run_halving_search(
        context,
        search,
        cache_dir,
        tags=grid_search_tags(profile),
        jobs=jobs,
        stack=stack,
        start_method=start_method,
        resume=resume,
        queue_dir=None if queue_dir is None else Path(queue_dir) / "grid-search",
        lease_ttl=lease_ttl,
        experiment="grid",
        progress=progress,
    )
    result.metadata["profile"] = profile.name
    return result


def fig6_table(result: ExplorationResult) -> str:
    """Render the Figure-6 learnability heat map."""
    return render_heatmap(
        result.accuracy_grid(),
        result.row_labels(),
        result.column_labels(),
        title="Figure 6 - clean accuracy (%) per (Vth, T)",
    )


def fig7_table(result: ExplorationResult, epsilon: float = 1.0) -> str:
    """Render the Figure-7 security heat map (PGD ε = 1)."""
    return render_heatmap(
        result.robustness_grid(epsilon),
        result.row_labels(),
        result.column_labels(),
        title=f"Figure 7 - robustness (%) under PGD eps={epsilon:g} per (Vth, T)",
    )


def fig8_table(result: ExplorationResult, epsilon: float = 1.5) -> str:
    """Render the Figure-8 security heat map (PGD ε = 1.5)."""
    return render_heatmap(
        result.robustness_grid(epsilon),
        result.row_labels(),
        result.column_labels(),
        title=f"Figure 8 - robustness (%) under PGD eps={epsilon:g} per (Vth, T)",
    )
