"""Command-line entry point: ``python -m repro.experiments``.

Examples
--------
Run the Figure-6/7/8 grid at smoke scale and save everything::

    python -m repro.experiments grid --profile smoke --out results/

Run the grid on two worker processes, then continue after an interrupt::

    python -m repro.experiments grid --profile smoke --jobs 2
    python -m repro.experiments grid --profile smoke --jobs 2 --resume

Run the motivational study::

    python -m repro.experiments fig1 --profile smoke

Run one ablation::

    python -m repro.experiments ablation-surrogate --profile smoke
"""

from __future__ import annotations

import argparse
import json
import sys
from collections.abc import Callable
from pathlib import Path

from repro.experiments.ablations import (
    run_attack_ablation,
    run_encoding_ablation,
    run_reset_ablation,
    run_surrogate_ablation,
)
from repro.experiments.fig1_motivation import run_fig1
from repro.experiments.fig678_grid import (
    fig6_table,
    fig7_table,
    fig8_table,
    run_grid_exploration,
)
from repro.experiments.fig9_sweetspots import run_fig9
from repro.experiments.profiles import available_profiles, get_profile

__all__ = ["main"]

_EXPERIMENTS = (
    "fig1",
    "grid",
    "fig9",
    "ablation-surrogate",
    "ablation-encoding",
    "ablation-reset",
    "ablation-attack",
    "all",
)


def _write_json(out_dir: Path | None, name: str, payload: dict | str) -> None:
    if out_dir is None:
        return
    out_dir.mkdir(parents=True, exist_ok=True)
    path = out_dir / f"{name}.json"
    text = payload if isinstance(payload, str) else json.dumps(payload, indent=2, sort_keys=True)
    path.write_text(text)
    print(f"[saved] {path}")


def _run_fig1(profile, out_dir: Path | None) -> None:
    result = run_fig1(profile, verbose=True)
    print(result.render())
    _write_json(out_dir, f"fig1_{profile.name}", result.as_dict())


def _run_grid(
    profile,
    out_dir: Path | None,
    jobs: int = 1,
    cache_dir: Path | None = None,
    resume: bool = False,
) -> None:
    from repro.errors import ExplorationError
    from repro.robustness import select_sweet_spots

    result = run_grid_exploration(
        profile, verbose=True, jobs=jobs, cache_dir=cache_dir, resume=resume
    )
    print(fig6_table(result))
    print()
    print(fig7_table(result))
    print()
    print(fig8_table(result))
    for epsilon in profile.grid_epsilons:
        try:
            picks = select_sweet_spots(result, epsilon, top_k=3)
        except ExplorationError:
            continue
        print(f"\nrecommended (Vth, T) sweet spots at eps={epsilon:g}:")
        for pick in picks:
            print(f"  {pick.render()}")
    _write_json(out_dir, f"grid_{profile.name}", result.to_json())


def _run_fig9(profile, out_dir: Path | None) -> None:
    result = run_fig9(profile, verbose=True)
    print(result.render())
    _write_json(out_dir, f"fig9_{profile.name}", result.as_dict())


def _run_ablation(runner, tag: str, profile, out_dir: Path | None) -> None:
    result = runner(profile)
    print(result.render())
    _write_json(out_dir, f"ablation_{tag}_{profile.name}", result.as_dict())


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Reproduce the figures of El-Allami et al., DATE 2021.",
    )
    parser.add_argument("experiment", choices=_EXPERIMENTS, help="what to run")
    parser.add_argument(
        "--profile",
        default="smoke",
        choices=available_profiles(),
        help="experiment scale (default: smoke)",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=None,
        help="directory for JSON result artifacts (optional)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for grid cells (default: 1, serial; "
        "parallel runs give identical results)",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="reuse checkpointed grid cells from a previous (possibly "
        "interrupted) run instead of recomputing them",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable per-cell checkpointing entirely",
    )
    parser.add_argument(
        "--cache-dir",
        type=Path,
        default=None,
        help="cell checkpoint directory (default: <out>/cell_cache, or "
        ".repro_cache/cells without --out)",
    )
    args = parser.parse_args(argv)
    profile = get_profile(args.profile)
    if args.jobs < 1:
        parser.error("--jobs must be >= 1")
    if args.resume and args.no_cache:
        parser.error("--resume needs checkpoints; drop --no-cache")
    if args.cache_dir is not None and args.no_cache:
        parser.error("--cache-dir conflicts with --no-cache")
    grid_flags_used = (
        args.jobs != 1 or args.resume or args.no_cache or args.cache_dir is not None
    )
    if grid_flags_used and args.experiment not in ("grid", "all"):
        parser.error(
            "--jobs/--resume/--cache-dir/--no-cache apply to the grid "
            "experiment only"
        )
    cache_dir: Path | None = None
    if not args.no_cache:
        if args.cache_dir is not None:
            cache_dir = args.cache_dir
        elif args.out is not None:
            cache_dir = args.out / "cell_cache"
        else:
            cache_dir = Path(".repro_cache") / "cells"

    planned: list[tuple[str, Callable[[], None]]] = []
    if args.experiment in ("fig1", "all"):
        planned.append(("fig1", lambda: _run_fig1(profile, args.out)))
    if args.experiment in ("grid", "all"):
        planned.append(
            (
                "grid",
                lambda: _run_grid(
                    profile,
                    args.out,
                    jobs=args.jobs,
                    cache_dir=cache_dir,
                    resume=args.resume,
                ),
            )
        )
    if args.experiment in ("fig9", "all"):
        planned.append(("fig9", lambda: _run_fig9(profile, args.out)))
    ablations = (
        ("ablation-surrogate", run_surrogate_ablation, "surrogate"),
        ("ablation-encoding", run_encoding_ablation, "encoding"),
        ("ablation-reset", run_reset_ablation, "reset"),
        ("ablation-attack", run_attack_ablation, "attack"),
    )
    for exp_name, runner, tag in ablations:
        if args.experiment in (exp_name, "all"):
            planned.append(
                (
                    exp_name,
                    lambda runner=runner, tag=tag: _run_ablation(
                        runner, tag, profile, args.out
                    ),
                )
            )

    # In "all" mode one failing experiment must not abort the rest: record
    # the failure, keep producing the other artifacts, and report a
    # non-zero exit at the end.  Single-experiment runs keep raising.
    failed: list[str] = []
    for name, step in planned:
        try:
            step()
        except Exception as error:
            if args.experiment != "all":
                raise
            failed.append(name)
            print(
                f"[failed] {name}: {type(error).__name__}: {error}",
                file=sys.stderr,
            )
    if failed:
        print(
            f"{len(failed)}/{len(planned)} experiment(s) failed: "
            + ", ".join(failed),
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
