"""Command-line entry point: ``python -m repro.experiments``.

Examples
--------
Run the Figure-6/7/8 grid at smoke scale and save everything::

    python -m repro.experiments grid --profile smoke --out results/

Run any engine-backed experiment on two worker processes, then continue
after an interrupt::

    python -m repro.experiments fig9 --profile smoke --jobs 2
    python -m repro.experiments fig9 --profile smoke --jobs 2 --resume

Re-attack the cached trained models with a different ε list (no
retraining thanks to the weight cache)::

    python -m repro.experiments fig9 --profile smoke --resume --epsilons 0.4,0.8,1.6

Run one ablation factor on a platform without ``fork``::

    python -m repro.experiments ablation --factor surrogate --start-method spawn --jobs 2

Inspect and prune the checkpoint/weight caches::

    python -m repro.experiments cache stats --cache-dir results/cell_cache
    python -m repro.experiments cache gc --cache-dir results/cell_cache --max-age-days 7

See ``docs/cli.md`` for the full flag reference.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from collections.abc import Callable
from pathlib import Path

from repro.engine.cache import (
    cache_stats,
    clear_cache_dir,
    entry_provenance,
    entry_timings,
    fingerprint_matches,
    gc_cache_dir,
    scan_cache_dir,
)
from repro.engine.merge import CacheMergeError, merge_cache_dirs, verify_cache_dir
from repro.engine.metrics import (
    configure_metrics,
    flush_metrics,
    merge_snapshots,
    read_metrics_dir,
    render_snapshot_text,
)
from repro.engine.queue import (
    DEFAULT_LEASE_TTL,
    QueueRunResult,
    WorkQueue,
    queue_status,
)
from repro.engine.resilience import (
    DEFAULT_MAX_ATTEMPTS,
    QUARANTINE_EXIT_CODE,
    ResilienceConfig,
)
from repro.engine.search import SearchConfig, derive_schedule, parse_budget_schedule
from repro.engine.shard import ShardRunResult, ShardSpec
from repro.experiments.ablations import run_ablation_suite
from repro.experiments.fig1_motivation import run_fig1
from repro.experiments.fig678_grid import (
    fig6_table,
    fig7_table,
    fig8_table,
    run_grid_exploration,
    run_grid_search,
)
from repro.experiments.fig9_sweetspots import run_fig9
from repro.experiments.profiles import available_profiles, get_profile
from repro.experiments.sweeps import ABLATION_FACTORS

__all__ = ["build_parser", "main"]

_START_METHODS = ("auto", "fork", "spawn")
_CACHE_ACTIONS = (
    "stats",
    "inspect",
    "clear",
    "gc",
    "merge",
    "verify",
    "watch",
    "metrics",
)

_DEFAULT_CACHE_DIR = Path(".repro_cache") / "cells"


def _parse_epsilons(text: str) -> tuple[float, ...]:
    try:
        values = tuple(float(part) for part in text.split(",") if part.strip())
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"--epsilons expects comma-separated numbers, got {text!r}"
        ) from None
    if not values:
        raise argparse.ArgumentTypeError("--epsilons needs at least one value")
    if any(eps < 0 for eps in values):
        raise argparse.ArgumentTypeError("epsilons must be >= 0")
    return values


def _parse_shard(text: str) -> ShardSpec:
    try:
        return ShardSpec.parse(text)
    except ValueError as error:
        raise argparse.ArgumentTypeError(str(error)) from None


def _parse_budget_schedule(text: str) -> tuple[int, ...]:
    try:
        return parse_budget_schedule(text)
    except ValueError as error:
        raise argparse.ArgumentTypeError(str(error)) from None


def build_parser() -> argparse.ArgumentParser:
    """The full CLI parser (exposed so docs checks can introspect it)."""
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Reproduce the figures of El-Allami et al., DATE 2021.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True, metavar="command")

    common = argparse.ArgumentParser(add_help=False)
    common.add_argument(
        "--profile",
        default="smoke",
        choices=available_profiles(),
        help="experiment scale (default: smoke)",
    )
    common.add_argument(
        "--out",
        type=Path,
        default=None,
        help="directory for JSON result artifacts (optional)",
    )

    engine = argparse.ArgumentParser(add_help=False)
    engine.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes (default: 1, serial; parallel runs give "
        "identical results)",
    )
    engine.add_argument(
        "--resume",
        action="store_true",
        help="reuse checkpointed results and cached trained weights from a "
        "previous (possibly interrupted) run instead of recomputing them",
    )
    engine.add_argument(
        "--no-cache",
        action="store_true",
        help="disable checkpointing and weight caching entirely",
    )
    engine.add_argument(
        "--cache-dir",
        type=Path,
        default=None,
        help="checkpoint/weight directory (default: <out>/cell_cache, or "
        ".repro_cache/cells without --out)",
    )
    engine.add_argument(
        "--start-method",
        choices=_START_METHODS,
        default="auto",
        help="worker pool backend: auto prefers fork and falls back to "
        "spawn, which rebuilds the job context per worker (default: auto)",
    )
    engine.add_argument(
        "--stack",
        type=int,
        default=1,
        metavar="K",
        help="pack up to K compatible grid cells into one fused "
        "VariantStack pass (default: 1, unstacked; stacked runs are "
        "in-process and bitwise identical per cell).  Grid only — the "
        "sweep experiments fall back to unstacked execution",
    )
    engine.add_argument(
        "--shard",
        type=_parse_shard,
        default=None,
        metavar="I/N",
        help="run only shard I of an N-way task partition (task i belongs "
        "to shard i mod N; indices are zero-based).  Each shard should use "
        "its own --cache-dir; merge them afterwards with `cache merge` and "
        "render figures via an unsharded --resume run",
    )
    engine.add_argument(
        "--queue",
        type=Path,
        default=None,
        metavar="DIR",
        help="join the dynamic work queue rooted at DIR as one worker of "
        "an elastic fleet: tasks are claimed (and stolen from dead "
        "workers) instead of pre-partitioned.  All workers must share "
        "DIR and the cache directory (default: DIR/cache); watch "
        "progress with `cache watch --queue DIR` and render figures via "
        "a --resume run once complete.  Conflicts with --shard, "
        "--no-cache and --jobs > 1 (scale by starting more workers)",
    )
    engine.add_argument(
        "--lease-ttl",
        type=float,
        default=DEFAULT_LEASE_TTL,
        metavar="SECONDS",
        help="queue mode only: seconds without a heartbeat after which a "
        f"task lease counts as abandoned and may be stolen (default: "
        f"{DEFAULT_LEASE_TTL:g})",
    )
    engine.add_argument(
        "--max-attempts",
        type=int,
        default=DEFAULT_MAX_ATTEMPTS,
        metavar="N",
        help="queue mode only: distinct failures a task may accumulate "
        "(across the whole fleet) before it is quarantined and the rest "
        "of the grid continues without it; quarantined runs exit with "
        f"code {QUARANTINE_EXIT_CODE} (default: {DEFAULT_MAX_ATTEMPTS})",
    )
    engine.add_argument(
        "--watchdog-mult",
        type=float,
        default=8.0,
        metavar="K",
        help="queue mode only: hung-task watchdog deadline as K x the "
        "cost model's predicted task seconds; a timed-out phase is "
        "aborted and retried like any failure.  0 disables the watchdog "
        "(default: 8)",
    )
    engine.add_argument(
        "--watchdog-floor",
        type=float,
        default=600.0,
        metavar="SECONDS",
        help="queue mode only: minimum watchdog deadline, and the flat "
        "deadline when the cache is cold and no cost history exists "
        "(default: 600)",
    )
    engine.add_argument(
        "--metrics-dir",
        type=Path,
        default=None,
        metavar="DIR",
        help="write per-process metrics snapshots (Prometheus text + JSON "
        "twin) into DIR: task/phase latency histograms, cache hit "
        "counters, queue and search counters.  Purely observational — "
        "results are byte-identical with or without it.  Merge a fleet's "
        "snapshots with `cache metrics DIR`",
    )

    epsilons = argparse.ArgumentParser(add_help=False)
    epsilons.add_argument(
        "--epsilons",
        type=_parse_epsilons,
        default=None,
        metavar="E1,E2,...",
        help="override the profile's noise-budget sweep; combined with "
        "--resume this reuses cached trained weights and only recomputes "
        "the security analysis",
    )

    subparsers.add_parser(
        "fig1",
        parents=[common],
        help="Fig. 1 motivational CNN-vs-SNN comparison (serial)",
    )
    grid = subparsers.add_parser(
        "grid",
        parents=[common, engine],
        help="Figs. 6-8 (Vth, T) grid exploration (Algorithm 1)",
    )
    grid.add_argument(
        "--search",
        choices=("exhaustive", "halving"),
        default="exhaustive",
        help="grid strategy: exhaustive trains every cell at the full "
        "budget (the paper's Algorithm 1); halving screens cells on "
        "ascending epoch budgets and promotes only the top fraction per "
        "rung, warm-starting from cached lower-budget weights (requires a "
        "cache directory; conflicts with --shard and --no-cache)",
    )
    grid.add_argument(
        "--budget-schedule",
        type=_parse_budget_schedule,
        default=None,
        metavar="E1,E2,...",
        help="halving only: ascending per-rung epoch budgets; the last "
        "must equal the profile's full training budget (default: a "
        "geometric schedule ending there, e.g. 2,4,8 for 8 epochs)",
    )
    grid.add_argument(
        "--halving-eta",
        type=float,
        default=None,
        metavar="ETA",
        help="halving only: keep ceil(n/ETA) cells per promotion "
        "(default: 2, classic halving)",
    )
    grid.add_argument(
        "--warm-start",
        action=argparse.BooleanOptionalAction,
        default=None,
        help="halving only: initialise promoted cells from the nearest "
        "cached lower-budget weights instead of training cold "
        "(default: enabled; audited by the warm-vs-cold bias gate, "
        "which disables it mid-search when metrics diverge beyond "
        "--bias-tolerance)",
    )
    grid.add_argument(
        "--bias-tolerance",
        type=float,
        default=None,
        metavar="DELTA",
        help="halving only: maximum warm-vs-cold divergence (absolute "
        "difference over clean accuracy and every robustness point) the "
        "bias gate accepts before disabling warm-start (default: 0.1)",
    )
    subparsers.add_parser(
        "fig9",
        parents=[common, engine, epsilons],
        help="Fig. 9 sweet-spot robustness curves vs the CNN",
    )
    ablation = subparsers.add_parser(
        "ablation",
        parents=[common, engine, epsilons],
        help="ablation suite (surrogate, encoding, reset, attack)",
    )
    ablation.add_argument(
        "--factor",
        action="append",
        choices=ABLATION_FACTORS,
        default=None,
        help="run only this factor (repeatable; default: all four)",
    )
    subparsers.add_parser(
        "all",
        parents=[common, engine],
        help="every experiment in sequence, isolating failures",
    )

    cache = subparsers.add_parser(
        "cache",
        help="inspect, prune or federate checkpoint and weight caches",
    )
    cache.add_argument(
        "action",
        choices=_CACHE_ACTIONS,
        help="stats: aggregate counts/sizes; inspect: list entries; "
        "clear: delete entries; gc: delete by age and/or fingerprint; "
        "merge: union shard cache directories into --into; "
        "verify: check a directory's shard manifest for completeness; "
        "watch: render a live fleet's merged queue progress; "
        "metrics: merge per-worker metrics snapshots into one fleet view",
    )
    cache.add_argument(
        "sources",
        nargs="*",
        type=Path,
        metavar="SRC",
        help="merge: shard cache directories to union; "
        "metrics: --metrics-dir directories holding metrics_*.json "
        "snapshots to merge",
    )
    cache.add_argument(
        "--into",
        type=Path,
        default=None,
        metavar="DST",
        help="merge only: destination directory receiving the union "
        "(created if missing; may already hold entries)",
    )
    cache.add_argument(
        "--cache-dir",
        type=Path,
        default=_DEFAULT_CACHE_DIR,
        help=f"cache directory to operate on (default: {_DEFAULT_CACHE_DIR})",
    )
    cache.add_argument(
        "--fingerprint",
        default=None,
        help="restrict to entries whose context fingerprint starts with "
        "this prefix (as shown by stats/inspect)",
    )
    cache.add_argument(
        "--max-age-days",
        type=float,
        default=None,
        help="gc only: delete entries last written more than this many "
        "days ago",
    )
    cache.add_argument(
        "--json",
        action="store_true",
        help="stats/inspect/merge/verify/watch/metrics: emit "
        "machine-readable JSON",
    )
    cache.add_argument(
        "--queue",
        type=Path,
        default=None,
        metavar="DIR",
        help="watch only: the queue directory a fleet shares (the one "
        "passed to the workers' --queue); experiment queues in its "
        "subdirectories are aggregated",
    )
    cache.add_argument(
        "--follow",
        action="store_true",
        help="watch only: keep re-rendering until the queue completes "
        "instead of printing one snapshot",
    )
    return parser


def _write_json(out_dir: Path | None, name: str, payload: dict | str) -> None:
    if out_dir is None:
        return
    out_dir.mkdir(parents=True, exist_ok=True)
    path = out_dir / f"{name}.json"
    text = payload if isinstance(payload, str) else json.dumps(payload, indent=2, sort_keys=True)
    path.write_text(text)
    print(f"[saved] {path}")


def _print_engine_summary(metadata: dict) -> None:
    stats = metadata.get("engine")
    if not stats:
        return
    line = (
        f"[engine] method={stats['start_method']} jobs={stats['jobs']} "
        f"cached={stats['cached_cells']} computed={stats['computed_cells']}"
    )
    if stats.get("shard"):
        line += f" shard={stats['shard']}"
    if "weights_reused" in metadata:
        line += f" weights_reused={metadata['weights_reused']}"
    print(line)


def _emit_shard_result(
    result: ShardRunResult, out_dir: Path | None, profile_name: str
) -> None:
    """Render and persist one shard's completion summary.

    Artifacts are suffixed with the shard slice (``..._shard0of3.json``)
    so several shards can share an ``--out`` directory without clobbering
    each other or the eventual full-figure artifact.
    """
    print(result.render())
    _print_engine_summary(result.metadata)
    suffix = f"shard{result.shard.index}of{result.shard.count}"
    _write_json(
        out_dir,
        f"{result.experiment}_{profile_name}_{suffix}",
        result.as_dict(),
    )


def _emit_queue_result(
    result: QueueRunResult, out_dir: Path | None, profile_name: str
) -> int:
    """Render and persist one queue worker's completion summary.

    Artifacts are suffixed with the worker id (``..._queue-host-123.json``)
    so a whole fleet can share an ``--out`` directory without clobbering
    each other or the eventual full-figure artifact.  Returns the exit
    code the run deserves: ``QUARANTINE_EXIT_CODE`` when any task
    exhausted its attempt budget, 0 otherwise.
    """
    print(result.render())
    _print_engine_summary(result.metadata)
    _write_json(
        out_dir,
        f"{result.experiment}_{profile_name}_queue-{result.worker}",
        result.as_dict(),
    )
    return QUARANTINE_EXIT_CODE if result.quarantined else 0


def _run_fig1(profile, out_dir: Path | None) -> int:
    result = run_fig1(profile, verbose=True)
    print(result.render())
    _write_json(out_dir, f"fig1_{profile.name}", result.as_dict())
    return 0


def _run_fig1_queued(
    profile, out_dir: Path | None, queue_dir: Path, lease_ttl: float
) -> int:
    """fig1's slot in a queued ``all`` run: exactly one worker computes it.

    fig1 has no engine port (it is serial and uncached), so a fleet
    arbitrates it through a one-task queue in ``<queue_dir>/fig1``: the
    worker that wins the lease runs the figure, everyone else skips it —
    and if the winner dies mid-figure, a later worker steals the expired
    lease exactly like any grid cell.
    """
    queue = WorkQueue(
        queue_dir / "fig1",
        experiment="fig1",
        fingerprint=f"fig1:{profile.name}",
        task_count=1,
        lease_ttl=lease_ttl,
    )
    acquired, _stolen = queue.acquire(0)
    if not acquired:
        state = "already done" if queue.is_done(0) else "another worker has it"
        print(f"[queue] skipping fig1: {state}")
        return 0
    try:
        _run_fig1(profile, out_dir)
        queue.commit(0, fingerprint=f"fig1_{profile.name}")
    finally:
        queue.release(0)
    return 0


def _run_grid(
    profile,
    out_dir: Path | None,
    jobs: int = 1,
    cache_dir: Path | None = None,
    resume: bool = False,
    start_method: str = "auto",
    shard: ShardSpec | None = None,
    stack: int = 1,
    queue_dir: Path | None = None,
    lease_ttl: float = DEFAULT_LEASE_TTL,
    resilience: ResilienceConfig | None = None,
) -> int:
    from repro.errors import ExplorationError
    from repro.robustness import select_sweet_spots

    result = run_grid_exploration(
        profile,
        verbose=True,
        jobs=jobs,
        cache_dir=cache_dir,
        resume=resume,
        start_method=start_method,
        shard=shard,
        stack=stack,
        queue_dir=queue_dir,
        lease_ttl=lease_ttl,
        resilience=resilience,
    )
    if isinstance(result, QueueRunResult):
        return _emit_queue_result(result, out_dir, profile.name)
    if isinstance(result, ShardRunResult):
        _emit_shard_result(result, out_dir, profile.name)
        return 0
    print(fig6_table(result))
    print()
    print(fig7_table(result))
    print()
    print(fig8_table(result))
    for epsilon in profile.grid_epsilons:
        try:
            picks = select_sweet_spots(result, epsilon, top_k=3)
        except ExplorationError:
            continue
        print(f"\nrecommended (Vth, T) sweet spots at eps={epsilon:g}:")
        for pick in picks:
            print(f"  {pick.render()}")
    _print_engine_summary(result.metadata)
    _write_json(out_dir, f"grid_{profile.name}", result.to_json())
    return 0


def _run_grid_search(
    profile,
    out_dir: Path | None,
    search: SearchConfig,
    jobs: int = 1,
    cache_dir: Path | None = None,
    resume: bool = False,
    start_method: str = "auto",
    stack: int = 1,
    queue_dir: Path | None = None,
    lease_ttl: float = DEFAULT_LEASE_TTL,
) -> int:
    """``grid --search halving``: guided exploration instead of the sweep.

    Unlike the exhaustive queue mode, every fleet worker blocks per rung
    until the rung completes, so each one independently derives the full
    :class:`~repro.engine.search.SearchResult` — the report below is
    printed (identically) by every worker.
    """
    result = run_grid_search(
        profile,
        search=search,
        verbose=True,
        jobs=jobs,
        cache_dir=cache_dir,
        resume=resume,
        start_method=start_method,
        stack=stack,
        queue_dir=queue_dir,
        lease_ttl=lease_ttl,
    )
    exploration = result.exploration()
    print(fig6_table(exploration))
    print()
    print(fig7_table(exploration))
    print()
    print(fig8_table(exploration))
    print()
    print(result.render())
    _write_json(out_dir, f"grid_search_{profile.name}", result.to_json())
    return 0


def _run_fig9(
    profile,
    out_dir: Path | None,
    jobs: int = 1,
    cache_dir: Path | None = None,
    resume: bool = False,
    start_method: str = "auto",
    epsilons: tuple[float, ...] | None = None,
    shard: ShardSpec | None = None,
    queue_dir: Path | None = None,
    lease_ttl: float = DEFAULT_LEASE_TTL,
    resilience: ResilienceConfig | None = None,
) -> int:
    result = run_fig9(
        profile,
        verbose=True,
        jobs=jobs,
        cache_dir=cache_dir,
        resume=resume,
        start_method=start_method,
        epsilons=epsilons,
        shard=shard,
        queue_dir=queue_dir,
        lease_ttl=lease_ttl,
        resilience=resilience,
    )
    if isinstance(result, QueueRunResult):
        return _emit_queue_result(result, out_dir, profile.name)
    if isinstance(result, ShardRunResult):
        _emit_shard_result(result, out_dir, profile.name)
        return 0
    print(result.render())
    _print_engine_summary(result.metadata)
    _write_json(out_dir, f"fig9_{profile.name}", result.as_dict())
    return 0


def _run_ablation(
    profile,
    out_dir: Path | None,
    factors: tuple[str, ...] = ABLATION_FACTORS,
    jobs: int = 1,
    cache_dir: Path | None = None,
    resume: bool = False,
    start_method: str = "auto",
    epsilons: tuple[float, ...] | None = None,
    shard: ShardSpec | None = None,
    queue_dir: Path | None = None,
    lease_ttl: float = DEFAULT_LEASE_TTL,
    resilience: ResilienceConfig | None = None,
) -> int:
    suite = run_ablation_suite(
        profile,
        factors=factors,
        verbose=True,
        jobs=jobs,
        cache_dir=cache_dir,
        resume=resume,
        start_method=start_method,
        epsilons=epsilons,
        shard=shard,
        queue_dir=queue_dir,
        lease_ttl=lease_ttl,
        resilience=resilience,
    )
    if isinstance(suite, QueueRunResult):
        return _emit_queue_result(suite, out_dir, profile.name)
    if isinstance(suite, ShardRunResult):
        _emit_shard_result(suite, out_dir, profile.name)
        return 0
    for factor in factors:
        result = suite[factor]
        print(result.render())
        print()
        _write_json(
            out_dir, f"ablation_{factor}_{profile.name}", result.as_dict()
        )
    first = suite[factors[0]]
    _print_engine_summary(first.metadata)
    return 0


def _format_size(size: int) -> str:
    value = float(size)
    for unit in ("B", "KiB", "MiB", "GiB"):
        if value < 1024 or unit == "GiB":
            return f"{value:.1f}{unit}" if unit != "B" else f"{int(value)}B"
        value /= 1024
    return f"{int(value)}B"


def _run_cache_merge(args) -> int:
    if not args.sources:
        print(
            "cache merge needs at least one SRC directory "
            "(usage: cache merge SRC... --into DST)",
            file=sys.stderr,
        )
        return 2
    if args.into is None:
        print(
            "cache merge needs --into DST (the directory receiving the union)",
            file=sys.stderr,
        )
        return 2
    try:
        report = merge_cache_dirs(args.sources, args.into)
    except CacheMergeError as error:
        # Conflicting cache contents: a data problem, not a usage one.
        print(f"cache merge failed: {error}", file=sys.stderr)
        return 1
    except ValueError as error:
        # Missing source directory, destination listed as a source —
        # usage errors, reported like the other argument mistakes.
        print(f"cache merge: {error}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(report.as_dict(), indent=2, sort_keys=True))
        return 0
    print(
        f"merged {len(report.sources)} source(s) into {report.destination}: "
        f"{report.copied} copied, {report.skipped_identical} identical, "
        f"{report.manifests_merged} manifest(s)"
    )
    for kind, count in sorted(report.by_kind.items()):
        print(f"  {kind}: {count} copied")
    return 0


def _run_cache_metrics(args) -> int:
    """``cache metrics DIR...``: merge per-worker snapshots into one view.

    Reads every ``metrics_*.json`` under the given ``--metrics-dir``
    directories and prints the merged fleet view — Prometheus text by
    default, the snapshot JSON with ``--json``.  Exit 2 on usage errors,
    1 when no snapshots exist (a run with ``--metrics-dir`` should have
    left at least one) or the snapshots are incompatible.
    """
    if not args.sources:
        print(
            "cache metrics needs at least one DIR (the --metrics-dir a "
            "run wrote its metrics_*.json snapshots into)",
            file=sys.stderr,
        )
        return 2
    snapshots = []
    for directory in args.sources:
        if not directory.is_dir():
            print(f"cache metrics: {directory} is not a directory", file=sys.stderr)
            return 2
        snapshots.extend(read_metrics_dir(directory))
    if not snapshots:
        dirs = ", ".join(str(s) for s in args.sources)
        print(f"no metrics snapshots (metrics_*.json) under {dirs}", file=sys.stderr)
        return 1
    try:
        merged = merge_snapshots(snapshots)
    except ValueError as error:
        print(f"cache metrics: {error}", file=sys.stderr)
        return 1
    if args.json:
        print(json.dumps(merged, indent=2, sort_keys=True))
    else:
        print(render_snapshot_text(merged), end="")
    return 0


def _run_cache_verify(args) -> int:
    ok, summaries = verify_cache_dir(args.cache_dir)
    if args.json:
        print(json.dumps({"complete": ok, "manifests": summaries}, indent=2))
        return 0 if ok else 1
    if not summaries:
        print(
            f"no shard manifest under {args.cache_dir} — nothing sharded "
            "ever ran there (or the directory predates manifests)",
            file=sys.stderr,
        )
        return 1
    for summary in summaries:
        status = "complete" if summary["complete"] else (
            f"INCOMPLETE ({len(summary['missing'])} missing"
            + (f", {len(summary['failed'])} failed" if summary["failed"] else "")
            + ")"
        )
        print(
            f"{summary['experiment']} [{summary['fingerprint'][:12]}]: "
            f"{summary['completed']}/{summary['task_count']} tasks — {status}"
        )
        if summary["missing"]:
            preview = ", ".join(str(i) for i in summary["missing"][:10])
            more = "" if len(summary["missing"]) <= 10 else ", ..."
            print(f"  missing ids: {preview}{more}")
    return 0 if ok else 1


def _print_queue_status(status: dict) -> None:
    fingerprint = (status.get("fingerprint") or "")[:12]
    header = (
        f"queue {status['directory']}: {status.get('experiment') or '?'}"
        + (f" [{fingerprint}]" if fingerprint else "")
        + f" {status['done']}/{status['task_count']} done"
    )
    if status["active_leases"]:
        owners = ", ".join(
            f"task {e['task']}@{e['owner'] or '?'} ({e['heartbeat_age_s']:.1f}s)"
            for e in status["active_leases"]
        )
        header += f"; active: {owners}"
    if status["expired_leases"]:
        header += f"; {len(status['expired_leases'])} expired lease(s) to steal"
    if status.get("quarantined"):
        cells = ", ".join(str(e["task"]) for e in status["quarantined"])
        header += f"; {len(status['quarantined'])} QUARANTINED (task {cells})"
    print(header)
    for name, bucket in status["workers"].items():
        line = (
            f"  {name}: {bucket['commits']} committed"
            + (f" ({bucket['steals']} stolen)" if bucket["steals"] else "")
            + (f", {bucket['cached']} cached" if bucket["cached"] else "")
            + (f", {bucket['duplicates']} duplicate" if bucket["duplicates"] else "")
            + (f", {bucket['retries']} retried" if bucket.get("retries") else "")
            + (f", {bucket['timeouts']} timed out" if bucket.get("timeouts") else "")
            + (f", {bucket['handoffs']} handed off" if bucket.get("handoffs") else "")
            + (
                f", {bucket['quarantines']} quarantined"
                if bucket.get("quarantines")
                else ""
            )
            + (f", {bucket['failed']} FAILED" if bucket["failed"] else "")
        )
        if bucket["elapsed_s"]:
            line += f", {bucket['elapsed_s']:.1f}s"
        print(line)
    if status["phase_totals"]:
        totals = " ".join(
            f"{phase.removesuffix('_s')}={value:.1f}s"
            for phase, value in status["phase_totals"].items()
        )
        print(f"  phase totals: {totals}")


def _queue_dirs(root: Path) -> list[Path]:
    """The queue directories under ``root``: itself, or its children.

    Workers nest per-experiment queues in subdirectories (``grid/``,
    ``fig9/``, ...), so watching the root a fleet was pointed at
    aggregates every experiment it is serving.
    """
    if (root / "queue.json").is_file():
        return [root]
    return sorted(path.parent for path in root.glob("*/queue.json"))


def _run_cache_watch(args) -> int:
    """``cache watch``: merge a fleet's event streams into live progress.

    Exits 0 once every watched queue is complete, 1 on a single
    incomplete snapshot (scriptable: CI gates on it), 2 when there is no
    queue to watch — and ``QUARANTINE_EXIT_CODE`` (3) when any watched
    queue carries a quarantined task, so supervisors notice poisoned
    cells even though the fleet itself ran to completion around them.
    ``--follow`` keeps re-rendering until completion.
    """
    if args.queue is None:
        print(
            "cache watch needs --queue DIR (the directory the fleet's "
            "workers were pointed at)",
            file=sys.stderr,
        )
        return 2
    while True:
        dirs = _queue_dirs(args.queue)
        if not dirs:
            print(
                f"no queue manifest under {args.queue} — no fleet ever "
                "ran there (workers create queue.json on join)",
                file=sys.stderr,
            )
            return 2
        statuses = [queue_status(path) for path in dirs]
        complete = all(status["complete"] for status in statuses)
        quarantined = any(status.get("quarantined") for status in statuses)
        if args.json:
            payload = statuses[0] if len(statuses) == 1 else statuses
            print(json.dumps(payload, indent=2, sort_keys=True))
        else:
            for status in statuses:
                _print_queue_status(status)
        if complete:
            return QUARANTINE_EXIT_CODE if quarantined else 0
        if not args.follow:
            return QUARANTINE_EXIT_CODE if quarantined else 1
        time.sleep(1.0)


def _run_cache(args) -> int:
    directory: Path = args.cache_dir
    if args.action != "watch" and (args.queue is not None or args.follow):
        # The queue lives next to the caches but is not a cache: only the
        # watch view reads it.  A silently ignored --queue on clear/gc
        # would delete the wrong directory's entries.
        print(
            f"cache {args.action} does not take --queue/--follow; "
            "use `cache watch --queue DIR` to observe a fleet",
            file=sys.stderr,
        )
        return 2
    if args.action == "watch":
        if args.fingerprint is not None:
            print(
                "cache watch does not take --fingerprint; it always shows "
                "the whole queue",
                file=sys.stderr,
            )
            return 2
        if args.sources or args.into is not None:
            print(
                "cache watch does not take SRC directories or --into; "
                "use `cache watch --queue DIR`",
                file=sys.stderr,
            )
            return 2
        if args.max_age_days is not None:
            print(
                "cache watch does not take --max-age-days",
                file=sys.stderr,
            )
            return 2
        return _run_cache_watch(args)
    if args.action not in ("merge", "metrics") and (
        args.sources or args.into is not None
    ):
        # A mistyped action with SRC/--into would otherwise be silently
        # ignored — and the user clearly meant a merge (or metrics).
        print(
            f"cache {args.action} does not take SRC directories or --into; "
            "use `cache merge SRC... --into DST` to federate caches or "
            "`cache metrics DIR` to merge metrics snapshots",
            file=sys.stderr,
        )
        return 2
    if args.action == "metrics" and args.into is not None:
        print(
            "cache metrics does not take --into; it prints the merged view",
            file=sys.stderr,
        )
        return 2
    if args.action not in ("gc",) and args.max_age_days is not None:
        # Silently ignoring an age bound would be harmless on stats/inspect
        # and catastrophic on clear; reject it uniformly — the user meant
        # `cache gc --max-age-days N`.
        print(
            f"cache {args.action} does not take --max-age-days; "
            "use `cache gc --max-age-days N` for age-based selection",
            file=sys.stderr,
        )
        return 2
    if args.action in ("merge", "verify", "metrics") and args.fingerprint is not None:
        # Merge always federates whole directories and verify always
        # checks every manifest; a silently ignored filter would let an
        # incomplete grid masquerade as verified.
        print(
            f"cache {args.action} does not take --fingerprint; it always "
            "covers the whole directory",
            file=sys.stderr,
        )
        return 2
    if args.action == "merge":
        return _run_cache_merge(args)
    if args.action == "metrics":
        return _run_cache_metrics(args)
    if args.action == "verify":
        return _run_cache_verify(args)
    if args.action == "stats":
        stats = cache_stats(directory, fingerprint=args.fingerprint)
        if args.json:
            print(json.dumps(stats, indent=2, sort_keys=True))
            return 0
        print(f"cache directory: {stats['directory']}")
        print(f"entries: {stats['entries']} ({_format_size(stats['total_bytes'])})")
        for kind, bucket in sorted(stats["by_kind"].items()):
            print(
                f"  {kind}: {bucket['entries']} entries, "
                f"{_format_size(bucket['bytes'])}"
            )
        for fingerprint, count in stats["by_fingerprint"].items():
            print(f"  fingerprint {fingerprint}: {count} entries")
        timings = stats.get("timings") or {}
        if timings.get("timed_entries"):
            totals = " ".join(
                f"{key.removesuffix('_s')}={value:.1f}s"
                for key, value in timings["totals"].items()
            )
            print(
                f"  phase totals over {timings['timed_entries']} "
                f"timed entr{'y' if timings['timed_entries'] == 1 else 'ies'}: "
                f"{totals}"
            )
        provenance = stats.get("provenance") or {}
        if provenance.get("warm_started"):
            by_kind = ", ".join(
                f"{kind}: {count}"
                for kind, count in provenance["warm_started_by_kind"].items()
            )
            print(
                f"  warm-started entries: {provenance['warm_started']} "
                f"({by_kind})"
            )
        return 0
    if args.action == "inspect":
        entries = [
            e for e in scan_cache_dir(directory)
            if fingerprint_matches(e, args.fingerprint)
        ]
        entries.sort(key=lambda e: e.modified, reverse=True)
        if args.json:
            print(json.dumps(
                [
                    {
                        "path": str(e.path),
                        "kind": e.kind,
                        "fingerprint": e.fingerprint,
                        "size_bytes": e.size_bytes,
                        "age_seconds": round(e.age_seconds(), 1),
                        "timings": entry_timings(e),
                        "provenance": entry_provenance(e),
                    }
                    for e in entries
                ],
                indent=2,
            ))
            return 0
        if not entries:
            print(f"no cache entries under {directory}")
            return 0
        for entry in entries:
            age_hours = entry.age_seconds() / 3600
            timings = entry_timings(entry)
            # Phase breakdown (train/attack/eval) shows where a cell's
            # wall time went — the signal BENCH trajectories watch.
            suffix = ""
            if timings:
                suffix = "  " + " ".join(
                    f"{key.removesuffix('_s')}={value:.1f}s"
                    for key, value in timings.items()
                )
            provenance = entry_provenance(entry)
            warm = (provenance or {}).get("warm_start")
            if warm:
                # Warm-start lineage: which archive seeded this one, and
                # from how far away — the trail `cache gc` keeps alive.
                suffix += (
                    f"  warm<-{warm.get('source_file', '?')}"
                    f"@{warm.get('source_epochs', '?')}ep"
                    f" d={warm.get('distance', 0.0):.2f}"
                )
            print(
                f"{entry.kind:<8} {entry.fingerprint} "
                f"{_format_size(entry.size_bytes):>10} {age_hours:8.1f}h  "
                f"{entry.path.name}{suffix}"
            )
        return 0
    if args.action == "clear":
        removed = clear_cache_dir(directory, fingerprint=args.fingerprint)
        print(f"removed {removed} cache entr{'y' if removed == 1 else 'ies'}")
        return 0
    # gc
    if args.max_age_days is None and args.fingerprint is None:
        print(
            "cache gc needs --max-age-days and/or --fingerprint "
            "(use `cache clear` to drop everything)",
            file=sys.stderr,
        )
        return 2
    max_age = None if args.max_age_days is None else args.max_age_days * 86400.0
    removed = gc_cache_dir(
        directory, max_age_seconds=max_age, fingerprint=args.fingerprint
    )
    print(f"removed {removed} cache entr{'y' if removed == 1 else 'ies'}")
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.command == "cache":
        return _run_cache(args)

    profile = get_profile(args.profile)
    if args.command == "fig1":
        _run_fig1(profile, args.out)
        return 0

    if args.jobs < 1:
        parser.error("--jobs must be >= 1")
    if args.stack < 1:
        parser.error("--stack must be >= 1")
    if args.resume and args.no_cache:
        parser.error("--resume needs checkpoints; drop --no-cache")
    if args.cache_dir is not None and args.no_cache:
        parser.error("--cache-dir conflicts with --no-cache")
    if args.shard is not None and args.no_cache:
        # A shard's entire output *is* its cache directory — running one
        # without checkpointing would compute results and discard them.
        parser.error("--shard needs checkpoints to hand to the merge; drop --no-cache")
    if args.lease_ttl <= 0:
        parser.error("--lease-ttl must be > 0 seconds")
    if args.max_attempts < 1:
        parser.error("--max-attempts must be >= 1")
    if args.watchdog_mult < 0:
        parser.error("--watchdog-mult must be >= 0 (0 disables the watchdog)")
    if args.watchdog_floor < 0:
        parser.error("--watchdog-floor must be >= 0 seconds")
    if args.metrics_dir is not None:
        # Enable before any engine work so the scheduler, caches, queue
        # and search all record; the directory is created eagerly so a
        # bad path fails now, not after a long run.
        try:
            configure_metrics(args.metrics_dir)
        except OSError as error:
            parser.error(f"--metrics-dir {args.metrics_dir}: {error}")
    if args.queue is not None:
        if args.shard is not None:
            parser.error(
                "--queue (dynamic fleet) conflicts with --shard (static "
                "partition); pick one"
            )
        if args.no_cache:
            parser.error(
                "--queue needs checkpoints — the shared cache directory is "
                "how workers exchange results; drop --no-cache"
            )
        if args.jobs > 1:
            parser.error(
                "--queue workers are single-process; scale the fleet by "
                "starting more workers instead of --jobs"
            )
    search_mode = getattr(args, "search", "exhaustive")
    search_flags = {
        "--budget-schedule": getattr(args, "budget_schedule", None),
        "--halving-eta": getattr(args, "halving_eta", None),
        "--warm-start/--no-warm-start": getattr(args, "warm_start", None),
        "--bias-tolerance": getattr(args, "bias_tolerance", None),
    }
    if search_mode != "halving":
        stray = [flag for flag, value in search_flags.items() if value is not None]
        if stray:
            parser.error(f"{stray[0]} requires --search halving")
    else:
        if args.no_cache:
            parser.error(
                "--search halving needs checkpoints — rung results are the "
                "promotion transport and weight archives the warm-start "
                "source; drop --no-cache"
            )
        if args.shard is not None:
            parser.error(
                "--search halving conflicts with --shard: promotions need "
                "every cell of a rung; use --queue for a multi-host search"
            )
        if getattr(args, "halving_eta", None) is not None and args.halving_eta <= 1:
            parser.error("--halving-eta must be > 1")
        if (
            getattr(args, "bias_tolerance", None) is not None
            and args.bias_tolerance < 0
        ):
            parser.error("--bias-tolerance must be >= 0")
    cache_dir: Path | None = None
    if not args.no_cache:
        if args.cache_dir is not None:
            cache_dir = args.cache_dir
        elif args.queue is not None:
            # Every worker of a fleet must share one checkpoint directory;
            # deriving it from --out (which legitimately differs per
            # worker) would silently split the fleet's results.
            cache_dir = args.queue / "cache"
        elif args.out is not None:
            cache_dir = args.out / "cell_cache"
        else:
            cache_dir = _DEFAULT_CACHE_DIR
    resilience = ResilienceConfig(
        max_attempts=args.max_attempts,
        watchdog_multiplier=args.watchdog_mult,
        watchdog_floor=args.watchdog_floor,
    )
    engine_kwargs = dict(
        jobs=args.jobs,
        cache_dir=cache_dir,
        resume=args.resume,
        start_method=args.start_method,
        shard=args.shard,
        queue_dir=args.queue,
        lease_ttl=args.lease_ttl,
        resilience=resilience,
    )
    epsilons = getattr(args, "epsilons", None)
    stack = args.stack
    if stack > 1 and args.command in ("fig9", "ablation"):
        # The sweep experiments train one model per sweep, not a grid of
        # stackable variants; silently ignoring the flag would misreport
        # how the run executed.
        print(
            f"[stack] {args.command} runs sweeps, not grid cells; "
            f"--stack {stack} falls back to unstacked execution"
        )
    # dict.fromkeys: drop repeated --factor flags while keeping order
    factors = tuple(dict.fromkeys(getattr(args, "factor", None) or ABLATION_FACTORS))

    planned: list[tuple[str, Callable[[], int]]] = []
    if args.command in ("fig1", "all"):
        # fig1 is still serial (no engine port yet), so a sharded `all`
        # assigns it — like any task — to exactly one shard: the owner of
        # task index 0.  Every other shard skips it instead of all N
        # hosts redundantly recomputing the same figure.  A queued `all`
        # arbitrates the same way, through a one-task claim queue.
        if args.command == "all" and args.queue is not None:
            planned.append(
                (
                    "fig1",
                    lambda: _run_fig1_queued(
                        profile, args.out, args.queue, args.lease_ttl
                    ),
                )
            )
        elif args.shard is None or args.shard.owns(0):
            planned.append(("fig1", lambda: _run_fig1(profile, args.out)))
        else:
            print(
                f"[shard {args.shard}] skipping fig1: the serial experiment "
                "belongs to shard 0"
            )
    if args.command in ("grid", "all"):
        if search_mode == "halving":
            full_epochs = profile.training_config().epochs
            schedule = search_flags["--budget-schedule"] or derive_schedule(full_epochs)
            search_config = SearchConfig(
                schedule=schedule,
                eta=search_flags["--halving-eta"] or 2.0,
                warm_start=(
                    True
                    if search_flags["--warm-start/--no-warm-start"] is None
                    else search_flags["--warm-start/--no-warm-start"]
                ),
                bias_tolerance=(
                    0.1
                    if search_flags["--bias-tolerance"] is None
                    else search_flags["--bias-tolerance"]
                ),
            )
            try:
                search_config.validate(full_epochs)
            except ValueError as error:
                parser.error(str(error))
            planned.append(
                (
                    "grid",
                    lambda: _run_grid_search(
                        profile,
                        args.out,
                        search_config,
                        jobs=args.jobs,
                        cache_dir=cache_dir,
                        resume=args.resume,
                        start_method=args.start_method,
                        stack=stack,
                        queue_dir=args.queue,
                        lease_ttl=args.lease_ttl,
                    ),
                )
            )
        else:
            planned.append(
                (
                    "grid",
                    lambda: _run_grid(profile, args.out, stack=stack, **engine_kwargs),
                )
            )
    if args.command in ("fig9", "all"):
        planned.append(
            (
                "fig9",
                lambda: _run_fig9(
                    profile, args.out, epsilons=epsilons, **engine_kwargs
                ),
            )
        )
    if args.command in ("ablation", "all"):
        planned.append(
            (
                "ablation",
                lambda: _run_ablation(
                    profile,
                    args.out,
                    factors=factors,
                    epsilons=epsilons,
                    **engine_kwargs,
                ),
            )
        )

    # In "all" mode one failing experiment must not abort the rest: record
    # the failure, keep producing the other artifacts, and report a
    # non-zero exit at the end.  Single-experiment runs keep raising.
    # Steps return their own exit codes — QUARANTINE_EXIT_CODE when a
    # queue run completed around a poisoned task — and the worst one
    # wins, so a quarantine is never masked by later healthy steps.
    failed: list[str] = []
    exit_code = 0
    for name, step in planned:
        try:
            exit_code = max(exit_code, step() or 0)
        except Exception as error:
            if args.command != "all":
                raise
            failed.append(name)
            print(
                f"[failed] {name}: {type(error).__name__}: {error}",
                file=sys.stderr,
            )
        finally:
            # One snapshot per completed experiment, so a multi-step
            # `all` run leaves current metrics even if a later step dies.
            flush_metrics()
    if failed:
        print(
            f"{len(failed)}/{len(planned)} experiment(s) failed: "
            + ", ".join(failed),
            file=sys.stderr,
        )
        return max(exit_code, 1)
    return exit_code


if __name__ == "__main__":
    sys.exit(main())
