"""Command-line entry point: ``python -m repro.experiments``.

Examples
--------
Run the Figure-6/7/8 grid at smoke scale and save everything::

    python -m repro.experiments grid --profile smoke --out results/

Run the motivational study::

    python -m repro.experiments fig1 --profile smoke

Run one ablation::

    python -m repro.experiments ablation-surrogate --profile smoke
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.experiments.ablations import (
    run_attack_ablation,
    run_encoding_ablation,
    run_reset_ablation,
    run_surrogate_ablation,
)
from repro.experiments.fig1_motivation import run_fig1
from repro.experiments.fig678_grid import (
    fig6_table,
    fig7_table,
    fig8_table,
    run_grid_exploration,
)
from repro.experiments.fig9_sweetspots import run_fig9
from repro.experiments.profiles import available_profiles, get_profile

__all__ = ["main"]

_EXPERIMENTS = (
    "fig1",
    "grid",
    "fig9",
    "ablation-surrogate",
    "ablation-encoding",
    "ablation-reset",
    "ablation-attack",
    "all",
)


def _write_json(out_dir: Path | None, name: str, payload: dict | str) -> None:
    if out_dir is None:
        return
    out_dir.mkdir(parents=True, exist_ok=True)
    path = out_dir / f"{name}.json"
    text = payload if isinstance(payload, str) else json.dumps(payload, indent=2, sort_keys=True)
    path.write_text(text)
    print(f"[saved] {path}")


def _run_fig1(profile, out_dir: Path | None) -> None:
    result = run_fig1(profile, verbose=True)
    print(result.render())
    _write_json(out_dir, f"fig1_{profile.name}", result.as_dict())


def _run_grid(profile, out_dir: Path | None) -> None:
    from repro.errors import ExplorationError
    from repro.robustness import select_sweet_spots

    result = run_grid_exploration(profile, verbose=True)
    print(fig6_table(result))
    print()
    print(fig7_table(result))
    print()
    print(fig8_table(result))
    for epsilon in profile.grid_epsilons:
        try:
            picks = select_sweet_spots(result, epsilon, top_k=3)
        except ExplorationError:
            continue
        print(f"\nrecommended (Vth, T) sweet spots at eps={epsilon:g}:")
        for pick in picks:
            print(f"  {pick.render()}")
    _write_json(out_dir, f"grid_{profile.name}", result.to_json())


def _run_fig9(profile, out_dir: Path | None) -> None:
    result = run_fig9(profile, verbose=True)
    print(result.render())
    _write_json(out_dir, f"fig9_{profile.name}", result.as_dict())


def _run_ablation(runner, tag: str, profile, out_dir: Path | None) -> None:
    result = runner(profile)
    print(result.render())
    _write_json(out_dir, f"ablation_{tag}_{profile.name}", result.as_dict())


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Reproduce the figures of El-Allami et al., DATE 2021.",
    )
    parser.add_argument("experiment", choices=_EXPERIMENTS, help="what to run")
    parser.add_argument(
        "--profile",
        default="smoke",
        choices=available_profiles(),
        help="experiment scale (default: smoke)",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=None,
        help="directory for JSON result artifacts (optional)",
    )
    args = parser.parse_args(argv)
    profile = get_profile(args.profile)

    if args.experiment in ("fig1", "all"):
        _run_fig1(profile, args.out)
    if args.experiment in ("grid", "all"):
        _run_grid(profile, args.out)
    if args.experiment in ("fig9", "all"):
        _run_fig9(profile, args.out)
    if args.experiment in ("ablation-surrogate", "all"):
        _run_ablation(run_surrogate_ablation, "surrogate", profile, args.out)
    if args.experiment in ("ablation-encoding", "all"):
        _run_ablation(run_encoding_ablation, "encoding", profile, args.out)
    if args.experiment in ("ablation-reset", "all"):
        _run_ablation(run_reset_ablation, "reset", profile, args.out)
    if args.experiment in ("ablation-attack", "all"):
        _run_ablation(run_attack_ablation, "attack", profile, args.out)
    return 0


if __name__ == "__main__":
    sys.exit(main())
