"""Per-figure reproduction harness.

Every data-bearing figure of the paper has a runner here; the benchmarks
under ``benchmarks/`` and the CLI (``python -m repro.experiments``) are
thin wrappers around these functions.

===========  ==========================================  ==================
Paper        What it shows                               Runner
===========  ==========================================  ==================
Figure 1     CNN vs SNN accuracy under PGD (motivation)  :func:`run_fig1`
Figure 6     learnability heat map over (Vth, T)         :func:`run_grid_exploration`
Figure 7     robustness heat map, PGD ε = 1              (same exploration)
Figure 8     robustness heat map, PGD ε = 1.5            (same exploration)
Figure 9     sweet-spot robustness curves vs CNN         :func:`run_fig9`
===========  ==========================================  ==================

Figures 6-8 come from a *single* run of Algorithm 1 (the security study
evaluates every ε on the models trained once), exactly as in the paper.
"""

from repro.experiments.ablations import (
    AblationResult,
    run_ablation_suite,
    run_attack_ablation,
    run_encoding_ablation,
    run_reset_ablation,
    run_surrogate_ablation,
)
from repro.experiments.fig1_motivation import Fig1Result, run_fig1
from repro.experiments.fig678_grid import (
    fig6_table,
    fig7_table,
    fig8_table,
    run_grid_exploration,
)
from repro.experiments.fig9_sweetspots import Fig9Result, run_fig9
from repro.experiments.profiles import ExperimentProfile, available_profiles, get_profile
from repro.experiments.sweeps import ABLATION_FACTORS
from repro.experiments.workloads import load_profile_data

__all__ = [
    "ABLATION_FACTORS",
    "AblationResult",
    "ExperimentProfile",
    "Fig1Result",
    "Fig9Result",
    "available_profiles",
    "fig6_table",
    "fig7_table",
    "fig8_table",
    "get_profile",
    "load_profile_data",
    "run_ablation_suite",
    "run_attack_ablation",
    "run_encoding_ablation",
    "run_fig1",
    "run_fig9",
    "run_grid_exploration",
    "run_reset_ablation",
    "run_surrogate_ablation",
]
