"""Spiking twins of the CNN baselines.

Each builder mirrors the topology of its CNN counterpart layer for layer
(same channel/unit counts), replacing ReLU activations with LIF
populations and the final classifier output with a leaky-integrator
readout, exactly like the Norse-based pipeline the paper used.

Two substrate-specific adaptations (both ablated in ``benchmarks/``):

* **Spiking-aware weight init** — synaptic inputs are sparse binary spike
  tensors (rate ``p`` of a few percent) rather than standardized
  activations, so Kaiming-initialised currents are too weak to reach
  threshold in deep stages.  All transform weights are scaled by
  ``weight_gain`` (default 3.0 ≈ 1/sqrt(p)), which restores signal
  propagation; see DESIGN.md §4.
* **Decoder** — the default is Norse's max-over-time readout membrane
  (what the paper's pipeline used); ``decoder="mean"`` (time-averaged
  membrane) trains slightly better on this substrate but smooths the
  attack gradients, and is kept for the decoder comparison.

Pooling is applied to the *spike* tensors (folded into the next stage's
synaptic transform), preserving the event-based information flow.
"""

from __future__ import annotations

import numpy as np

from repro import nn
from repro.models.lenet import pooled_size
from repro.snn.decoding import (
    LastMembraneDecoder,
    MaxMembraneDecoder,
    MeanMembraneDecoder,
)
from repro.snn.encoding import ConstantCurrentLIFEncoder
from repro.snn.network import SpikingLayer, SpikingNetwork, SpikingReadout
from repro.snn.neuron import LICell, LIFCell, LIFParameters
from repro.utils.seeding import new_rng

__all__ = ["build_spiking_cnn5", "build_spiking_lenet5", "build_spiking_lenet_mini"]

_DECODERS = {
    "mean": MeanMembraneDecoder,
    "max": MaxMembraneDecoder,
    "last": LastMembraneDecoder,
}


def _make_decoder(name: str) -> nn.Module:
    try:
        return _DECODERS[name]()
    except KeyError:
        raise ValueError(
            f"unknown decoder {name!r}; available: {tuple(sorted(_DECODERS))}"
        ) from None


def _apply_weight_gain(network: SpikingNetwork, gain: float) -> None:
    """Scale all synaptic weights (not biases) by ``gain``."""
    if gain <= 0:
        raise ValueError(f"weight_gain must be positive, got {gain}")
    if gain == 1.0:
        return
    for name, parameter in network.named_parameters():
        if name.endswith("weight"):
            parameter.data = parameter.data * gain


def _network(
    stages: list[SpikingLayer],
    readout: SpikingReadout,
    params: LIFParameters,
    time_steps: int,
    input_scale: float,
    vary_encoder_threshold: bool,
    decoder: str,
    weight_gain: float,
) -> SpikingNetwork:
    encoder = ConstantCurrentLIFEncoder(params=params, input_scale=input_scale)
    network = SpikingNetwork(
        encoder=encoder,
        layers=stages,
        readout=readout,
        time_steps=time_steps,
        decoder=_make_decoder(decoder),
        vary_encoder_threshold=vary_encoder_threshold,
    )
    _apply_weight_gain(network, weight_gain)
    return network


def build_spiking_lenet5(
    input_size: int = 28,
    num_classes: int = 10,
    time_steps: int = 64,
    lif_params: LIFParameters | None = None,
    input_scale: float = 2.0,
    vary_encoder_threshold: bool = True,
    decoder: str = "max",
    weight_gain: float = 3.0,
    rng: int | np.random.Generator | None = None,
) -> SpikingNetwork:
    """Spiking LeNet-5 (paper's evaluation SNN).

    Topology: encoder - [conv6@5x5 + LIF] - [pool, conv16@5x5 + LIF] -
    [pool, flatten, fc120 + LIF] - [fc84 + LIF] - readout fc``num_classes``.
    """
    params = lif_params or LIFParameters()
    params.validate()
    generator = new_rng(rng)
    # conv1 (pad 2) keeps size; pool /2; conv2 (valid 5x5) -4; pool /2.
    after_conv2 = input_size // 2 - 4
    flat = 16 * (after_conv2 // 2) ** 2
    stages = [
        SpikingLayer(nn.Conv2d(1, 6, 5, padding=2, rng=generator), LIFCell(params)),
        SpikingLayer(
            nn.Sequential(nn.MaxPool2d(2), nn.Conv2d(6, 16, 5, rng=generator)),
            LIFCell(params),
        ),
        SpikingLayer(
            nn.Sequential(
                nn.MaxPool2d(2), nn.Flatten(), nn.Linear(flat, 120, rng=generator)
            ),
            LIFCell(params),
        ),
        SpikingLayer(nn.Linear(120, 84, rng=generator), LIFCell(params)),
    ]
    readout = SpikingReadout(nn.Linear(84, num_classes, rng=generator), LICell(params))
    return _network(
        stages, readout, params, time_steps, input_scale,
        vary_encoder_threshold, decoder, weight_gain,
    )


def build_spiking_lenet_mini(
    input_size: int = 16,
    num_classes: int = 10,
    time_steps: int = 32,
    lif_params: LIFParameters | None = None,
    input_scale: float = 2.0,
    vary_encoder_threshold: bool = True,
    decoder: str = "max",
    weight_gain: float = 3.0,
    rng: int | np.random.Generator | None = None,
) -> SpikingNetwork:
    """Width-reduced spiking LeNet used by the fast experiment profiles.

    Mirrors :class:`repro.models.lenet.LeNetMini` layer for layer:
    conv8@3x3 - pool - conv16@3x3 - pool - fc64 - readout fc10.
    """
    params = lif_params or LIFParameters()
    params.validate()
    generator = new_rng(rng)
    flat = 16 * pooled_size(input_size, 2) ** 2
    stages = [
        SpikingLayer(nn.Conv2d(1, 8, 3, padding=1, rng=generator), LIFCell(params)),
        SpikingLayer(
            nn.Sequential(nn.MaxPool2d(2), nn.Conv2d(8, 16, 3, padding=1, rng=generator)),
            LIFCell(params),
        ),
        SpikingLayer(
            nn.Sequential(
                nn.MaxPool2d(2), nn.Flatten(), nn.Linear(flat, 64, rng=generator)
            ),
            LIFCell(params),
        ),
    ]
    readout = SpikingReadout(nn.Linear(64, num_classes, rng=generator), LICell(params))
    return _network(
        stages, readout, params, time_steps, input_scale,
        vary_encoder_threshold, decoder, weight_gain,
    )


def build_spiking_cnn5(
    input_size: int = 28,
    num_classes: int = 10,
    time_steps: int = 64,
    channels: tuple[int, int, int] = (8, 16, 16),
    hidden: int = 64,
    lif_params: LIFParameters | None = None,
    input_scale: float = 2.0,
    vary_encoder_threshold: bool = True,
    decoder: str = "max",
    weight_gain: float = 3.0,
    rng: int | np.random.Generator | None = None,
) -> SpikingNetwork:
    """Spiking twin of :class:`repro.models.lenet.CNN5` (paper Fig. 1 SNN).

    Same number of layers and neurons per layer as the CNN, per the
    motivational case study setup.
    """
    params = lif_params or LIFParameters()
    params.validate()
    generator = new_rng(rng)
    c1, c2, c3 = channels
    flat = c3 * pooled_size(input_size, 2) ** 2
    stages = [
        SpikingLayer(nn.Conv2d(1, c1, 3, padding=1, rng=generator), LIFCell(params)),
        SpikingLayer(
            nn.Sequential(nn.MaxPool2d(2), nn.Conv2d(c1, c2, 3, padding=1, rng=generator)),
            LIFCell(params),
        ),
        SpikingLayer(
            nn.Sequential(nn.MaxPool2d(2), nn.Conv2d(c2, c3, 3, padding=1, rng=generator)),
            LIFCell(params),
        ),
        SpikingLayer(
            nn.Sequential(nn.Flatten(), nn.Linear(flat, hidden, rng=generator)),
            LIFCell(params),
        ),
    ]
    readout = SpikingReadout(nn.Linear(hidden, num_classes, rng=generator), LICell(params))
    return _network(
        stages, readout, params, time_steps, input_scale,
        vary_encoder_threshold, decoder, weight_gain,
    )
