"""Reference models: the paper's CNNs and their spiking twins.

The paper compares equal-topology pairs:

* Fig. 1 (motivation): a 5-layer CNN (3 conv + 2 FC) vs. an SNN with the
  same layer/neuron counts — :class:`CNN5` / :func:`build_spiking_cnn5`.
* Figs. 6-9 (evaluation): LeNet-5 adapted to the spiking domain —
  :class:`LeNet5` / :func:`build_spiking_lenet5`.

``*Mini`` variants keep the topology shape but shrink widths; the fast
experiment profiles use them so the full `(Vth, T)` grid runs on CPU in
minutes (DESIGN.md §2).
"""

from repro.models.lenet import CNN5, LeNet5, LeNetMini
from repro.models.registry import available_models, build_model
from repro.models.spiking_lenet import (
    build_spiking_cnn5,
    build_spiking_lenet5,
    build_spiking_lenet_mini,
)

__all__ = [
    "CNN5",
    "LeNet5",
    "LeNetMini",
    "available_models",
    "build_model",
    "build_spiking_cnn5",
    "build_spiking_lenet5",
    "build_spiking_lenet_mini",
]
