"""Non-spiking CNN baselines.

These are the paper's comparators: the accuracy of each spiking model is
tracked against the equal-topology CNN trained on the same data under the
same attack (paper Figs. 1 and 9).
"""

from __future__ import annotations

import numpy as np

from repro import nn
from repro.tensor.tensor import Tensor
from repro.utils.seeding import new_rng

__all__ = ["CNN5", "LeNet5", "LeNetMini", "pooled_size"]


def pooled_size(input_size: int, times: int) -> int:
    """Spatial size after ``times`` 2x2 poolings of ``input_size``."""
    size = input_size
    for _ in range(times):
        size //= 2
    if size < 1:
        raise ValueError(f"input_size {input_size} too small for {times} poolings")
    return size


class LeNet5(nn.Module):
    """LeNet-5: 2 conv + 3 FC layers (the paper's evaluation CNN).

    Structure (for 28x28): conv(6@5x5, pad 2) - pool - conv(16@5x5) -
    pool - fc 120 - fc 84 - fc ``num_classes``.  The spatial sizes adapt
    to ``input_size`` so the same class serves the reduced-resolution
    profiles.
    """

    def __init__(
        self,
        input_size: int = 28,
        num_classes: int = 10,
        rng: int | np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        generator = new_rng(rng)
        self.input_size = input_size
        self.num_classes = num_classes
        # conv1 (pad 2) keeps size; pool /2; conv2 (valid 5x5) -4; pool /2.
        after_conv2 = input_size // 2 - 4
        flat = 16 * (after_conv2 // 2) ** 2
        self.features = nn.Sequential(
            nn.Conv2d(1, 6, 5, padding=2, rng=generator),
            nn.ReLU(),
            nn.MaxPool2d(2),
            nn.Conv2d(6, 16, 5, rng=generator),
            nn.ReLU(),
            nn.MaxPool2d(2),
            nn.Flatten(),
        )
        self.classifier = nn.Sequential(
            nn.Linear(flat, 120, rng=generator),
            nn.ReLU(),
            nn.Linear(120, 84, rng=generator),
            nn.ReLU(),
            nn.Linear(84, num_classes, rng=generator),
        )

    def forward(self, x: Tensor) -> Tensor:
        return self.classifier(self.features(self._as_tensor(x)))


class LeNetMini(nn.Module):
    """Width-reduced LeNet-shaped CNN for the fast experiment profiles.

    Same 2-conv + FC shape as :class:`LeNet5` with 8/16 channels and a
    64-unit hidden FC layer, mirroring the spiking mini twin exactly
    (:func:`repro.models.spiking_lenet.build_spiking_lenet_mini`).
    """

    def __init__(
        self,
        input_size: int = 16,
        num_classes: int = 10,
        rng: int | np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        generator = new_rng(rng)
        self.input_size = input_size
        self.num_classes = num_classes
        flat = 16 * pooled_size(input_size, 2) ** 2
        self.features = nn.Sequential(
            nn.Conv2d(1, 8, 3, padding=1, rng=generator),
            nn.ReLU(),
            nn.MaxPool2d(2),
            nn.Conv2d(8, 16, 3, padding=1, rng=generator),
            nn.ReLU(),
            nn.MaxPool2d(2),
            nn.Flatten(),
        )
        self.classifier = nn.Sequential(
            nn.Linear(flat, 64, rng=generator),
            nn.ReLU(),
            nn.Linear(64, num_classes, rng=generator),
        )

    def forward(self, x: Tensor) -> Tensor:
        return self.classifier(self.features(self._as_tensor(x)))


class CNN5(nn.Module):
    """The motivational 5-layer CNN of paper Fig. 1 (3 conv + 2 FC)."""

    def __init__(
        self,
        input_size: int = 28,
        num_classes: int = 10,
        channels: tuple[int, int, int] = (8, 16, 16),
        hidden: int = 64,
        rng: int | np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        generator = new_rng(rng)
        self.input_size = input_size
        self.num_classes = num_classes
        c1, c2, c3 = channels
        flat = c3 * pooled_size(input_size, 2) ** 2
        self.features = nn.Sequential(
            nn.Conv2d(1, c1, 3, padding=1, rng=generator),
            nn.ReLU(),
            nn.MaxPool2d(2),
            nn.Conv2d(c1, c2, 3, padding=1, rng=generator),
            nn.ReLU(),
            nn.MaxPool2d(2),
            nn.Conv2d(c2, c3, 3, padding=1, rng=generator),
            nn.ReLU(),
            nn.Flatten(),
        )
        self.classifier = nn.Sequential(
            nn.Linear(flat, hidden, rng=generator),
            nn.ReLU(),
            nn.Linear(hidden, num_classes, rng=generator),
        )

    def forward(self, x: Tensor) -> Tensor:
        return self.classifier(self.features(self._as_tensor(x)))
