"""Name-based model construction.

The experiment harness and examples refer to models by name so that
profiles stay declarative; this registry maps names to builders.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.models.lenet import CNN5, LeNet5, LeNetMini
from repro.models.spiking_lenet import (
    build_spiking_cnn5,
    build_spiking_lenet5,
    build_spiking_lenet_mini,
)
from repro.nn.module import Module

_BUILDERS: dict[str, Callable[..., Module]] = {
    "lenet5": LeNet5,
    "lenet_mini": LeNetMini,
    "cnn5": CNN5,
    "snn_lenet5": build_spiking_lenet5,
    "snn_lenet_mini": build_spiking_lenet_mini,
    "snn_cnn5": build_spiking_cnn5,
}


def available_models() -> tuple[str, ...]:
    """Names accepted by :func:`build_model`."""
    return tuple(sorted(_BUILDERS))


def build_model(name: str, **kwargs) -> Module:
    """Build a registered model by name, forwarding keyword arguments.

    >>> model = build_model("lenet_mini", input_size=16, rng=0)
    """
    try:
        builder = _BUILDERS[name]
    except KeyError:
        raise ValueError(
            f"unknown model {name!r}; available: {available_models()}"
        ) from None
    return builder(**kwargs)
