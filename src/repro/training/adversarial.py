"""Adversarial training (Madry et al., 2018) for CNNs and SNNs.

The paper's conclusion positions structural-parameter tuning as a
*complement* to algorithmic defenses; this module provides the canonical
such defense — PGD adversarial training — so the two can be combined and
compared.  Each mini-batch is (partially) replaced by adversarial
examples crafted against the current model state before the usual
gradient step.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.attacks.base import Attack
from repro.attacks.pgd import PGD
from repro.data.dataset import ArrayDataset, DataLoader
from repro.errors import TrainingError
from repro.tensor import functional as F
from repro.tensor.tensor import Tensor
from repro.training.trainer import Trainer, TrainingConfig

__all__ = ["AdversarialTrainer", "AdversarialTrainingConfig"]


@dataclass(frozen=True)
class AdversarialTrainingConfig(TrainingConfig):
    """Training hyper-parameters plus the inner-attack settings."""

    attack_epsilon: float = 0.1
    """Budget of the training-time PGD adversary."""

    attack_steps: int = 5
    """Inner PGD iterations (training cost scales linearly with this)."""

    adversarial_fraction: float = 0.5
    """Fraction of each batch replaced by adversarial examples
    (1.0 = pure Madry-style adversarial training)."""

    clip_min: float = 0.0
    clip_max: float = 1.0

    def validate(self) -> None:
        """Extend the base validation with the attack fields."""
        super().validate()
        if self.attack_epsilon < 0:
            raise ValueError("attack_epsilon must be >= 0")
        if self.attack_steps < 1:
            raise ValueError("attack_steps must be >= 1")
        if not 0.0 <= self.adversarial_fraction <= 1.0:
            raise ValueError("adversarial_fraction must be in [0, 1]")
        if self.clip_min >= self.clip_max:
            raise ValueError("need clip_min < clip_max")


class AdversarialTrainer(Trainer):
    """Trainer whose batches are adversarially perturbed on the fly.

    Examples
    --------
    >>> config = AdversarialTrainingConfig(epochs=3, attack_epsilon=0.1)
    >>> AdversarialTrainer(model, config).fit(train_set)   # doctest: +SKIP
    """

    def __init__(
        self,
        model,
        config: AdversarialTrainingConfig | None = None,
        attack: Attack | None = None,
    ) -> None:
        config = config or AdversarialTrainingConfig()
        super().__init__(model, config)
        self.attack = attack or PGD(
            config.attack_epsilon,
            steps=config.attack_steps,
            clip_min=config.clip_min,
            clip_max=config.clip_max,
            rng=config.seed,
        )
        self._mix_rng = np.random.default_rng(config.seed)

    def _run_epoch(self, loader: DataLoader) -> tuple[float, float]:
        config: AdversarialTrainingConfig = self.config  # narrowed by __init__
        self.model.train()
        total_loss = 0.0
        total_correct = 0
        total_seen = 0
        for images, labels in loader:
            batch = self._adversarialize(images, labels, config)
            logits = self.model(Tensor(batch))
            loss = F.cross_entropy(logits, labels)
            loss_value = float(loss.data)
            if not np.isfinite(loss_value):
                raise TrainingError(f"loss diverged to {loss_value}")
            self.optimizer.zero_grad()
            loss.backward()
            self.optimizer.step()
            count = len(labels)
            total_loss += loss_value * count
            total_correct += int((logits.data.argmax(axis=1) == labels).sum())
            total_seen += count
        return total_loss / total_seen, total_correct / total_seen

    def _adversarialize(
        self,
        images: np.ndarray,
        labels: np.ndarray,
        config: AdversarialTrainingConfig,
    ) -> np.ndarray:
        """Replace a fraction of the batch with PGD examples."""
        if config.adversarial_fraction == 0.0 or config.attack_epsilon == 0.0:
            return images
        # crafting must not interfere with the outer gradient step
        self.model.eval()
        try:
            adversarial = self.attack.generate(self.model, images, labels)
        finally:
            self.model.train()
        if config.adversarial_fraction >= 1.0:
            return adversarial
        mask = self._mix_rng.random(len(images)) < config.adversarial_fraction
        mixed = images.copy()
        mixed[mask] = adversarial[mask]
        return mixed
