"""Generic supervised training loop.

Used for both the CNN baselines and the spiking networks — the only
contract is ``model(Tensor(batch)) -> logits``.  The robustness-exploration
pipeline (Algorithm 1, line 3 "Train(Sij)") delegates here.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.data.dataset import ArrayDataset, DataLoader
from repro.errors import TrainingError
from repro.nn.module import Module
from repro.optim.adam import Adam
from repro.tensor import functional as F
from repro.tensor.tensor import Tensor, no_grad
from repro.training.metrics import accuracy
from repro.utils.logging import get_logger

__all__ = ["Trainer", "TrainingConfig", "TrainingHistory"]

_logger = get_logger("training")


@dataclass(frozen=True)
class TrainingConfig:
    """Hyper-parameters of one training run."""

    epochs: int = 8
    """Number of passes over the training set."""

    batch_size: int = 32
    """Mini-batch size."""

    learning_rate: float = 5e-3
    """Adam step size."""

    weight_decay: float = 0.0
    """L2 penalty coefficient."""

    shuffle: bool = True
    """Reshuffle the training set every epoch."""

    seed: int = 0
    """Seed for batch shuffling."""

    eval_batch_size: int = 64
    """Batch size for accuracy evaluation."""

    max_grad_norm: float | None = None
    """Optional global gradient-norm clip."""

    fused_backward: bool = False
    """Opt-in: run training backwards through the model's graph-free BPTT
    path (``fused_loss_backward``) when it offers one and its
    ``backward_ready`` contract holds.  Parameter gradients — and thus the
    trained weights — are identical to the autograd path; the unrolled
    graph is simply never built.  Off by default so checkpoint
    fingerprints and historical training traces stay byte-stable."""

    def validate(self) -> None:
        """Raise ``ValueError`` on out-of-range fields."""
        if self.epochs < 1:
            raise ValueError(f"epochs must be >= 1, got {self.epochs}")
        if self.batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {self.batch_size}")
        if self.learning_rate <= 0:
            raise ValueError(f"learning_rate must be positive, got {self.learning_rate}")
        if self.max_grad_norm is not None and self.max_grad_norm <= 0:
            raise ValueError("max_grad_norm must be positive when set")


@dataclass
class TrainingHistory:
    """Per-epoch record of a run."""

    train_loss: list[float] = field(default_factory=list)
    train_accuracy: list[float] = field(default_factory=list)
    eval_accuracy: list[float] = field(default_factory=list)

    @property
    def final_eval_accuracy(self) -> float:
        """Last recorded evaluation accuracy (NaN when never evaluated)."""
        return self.eval_accuracy[-1] if self.eval_accuracy else float("nan")


class Trainer:
    """Train a classifier on an :class:`ArrayDataset` with Adam.

    Examples
    --------
    >>> trainer = Trainer(model, TrainingConfig(epochs=2))
    >>> history = trainer.fit(train_set, eval_set)   # doctest: +SKIP
    """

    def __init__(self, model: Module, config: TrainingConfig | None = None) -> None:
        self.model = model
        self.config = config or TrainingConfig()
        self.config.validate()
        self.optimizer = Adam(
            model.parameters(),
            lr=self.config.learning_rate,
            weight_decay=self.config.weight_decay,
        )
        self.history = TrainingHistory()

    def fit(
        self,
        train_set: ArrayDataset,
        eval_set: ArrayDataset | None = None,
        verbose: bool = False,
        start_epoch: int = 0,
        optimizer_state: dict | None = None,
    ) -> TrainingHistory:
        """Run the configured number of epochs; returns the history.

        ``start_epoch`` resumes a run whose first epochs already happened
        elsewhere (warm-start from checkpointed weights): the model is
        assumed to hold the epoch-``start_epoch`` parameters, the shuffle
        stream is advanced past the epochs already consumed, and only the
        remaining ``epochs - start_epoch`` passes execute.  When the
        checkpoint also carried ``optimizer_state`` (Adam moments, see
        :meth:`Adam.state_dict`), passing it here makes the resume a
        bitwise continuation of the original run; without it the moments
        restart cold and resumed training is a warm re-anneal instead.

        Raises :class:`TrainingError` if the loss becomes non-finite.
        """
        if start_epoch < 0:
            raise ValueError(f"start_epoch must be >= 0, got {start_epoch}")
        if optimizer_state is not None:
            self.optimizer.load_state_dict(optimizer_state)
        loader = DataLoader(
            train_set,
            batch_size=self.config.batch_size,
            shuffle=self.config.shuffle,
            seed=self.config.seed,
        )
        loader.skip_epochs(min(start_epoch, self.config.epochs))
        for epoch in range(start_epoch, self.config.epochs):
            loss_value, train_acc = self._run_epoch(loader)
            self.history.train_loss.append(loss_value)
            self.history.train_accuracy.append(train_acc)
            if eval_set is not None:
                eval_acc = self.evaluate(eval_set)
                self.history.eval_accuracy.append(eval_acc)
            if verbose:
                eval_msg = (
                    f" eval_acc={self.history.eval_accuracy[-1]:.3f}"
                    if eval_set is not None
                    else ""
                )
                _logger.info(
                    "epoch %d/%d loss=%.4f train_acc=%.3f%s",
                    epoch + 1,
                    self.config.epochs,
                    loss_value,
                    train_acc,
                    eval_msg,
                )
        return self.history

    def _use_fused_backward(self) -> bool:
        """Whether epochs may ride the model's graph-free BPTT path."""
        return (
            self.config.fused_backward
            and hasattr(self.model, "fused_loss_backward")
            and getattr(self.model, "use_fused_backward", False)
            and self.model.backward_ready()
        )

    def _run_epoch(self, loader: DataLoader) -> tuple[float, float]:
        self.model.train()
        fused = self._use_fused_backward()
        total_loss = 0.0
        total_correct = 0
        total_seen = 0
        for images, labels in loader:
            if fused:
                self.optimizer.zero_grad()
                loss_value, logits_data = self.model.fused_loss_backward(images, labels)
                if not np.isfinite(loss_value):
                    raise TrainingError(f"loss diverged to {loss_value}")
            else:
                logits = self.model(Tensor(images))
                loss = F.cross_entropy(logits, labels)
                loss_value = float(loss.data)
                if not np.isfinite(loss_value):
                    raise TrainingError(f"loss diverged to {loss_value}")
                self.optimizer.zero_grad()
                loss.backward()
                logits_data = logits.data
            if self.config.max_grad_norm is not None:
                self._clip_gradients(self.config.max_grad_norm)
            self.optimizer.step()
            batch = len(labels)
            total_loss += loss_value * batch
            total_correct += int((logits_data.argmax(axis=1) == labels).sum())
            total_seen += batch
        return total_loss / total_seen, total_correct / total_seen

    def _clip_gradients(self, max_norm: float) -> None:
        grads = [p.grad for p in self.optimizer.parameters if p.grad is not None]
        if not grads:
            return
        total = float(np.sqrt(sum(float((g * g).sum()) for g in grads)))
        if total > max_norm:
            scale = max_norm / (total + 1e-12)
            for grad in grads:
                grad *= scale

    def evaluate(self, dataset: ArrayDataset) -> float:
        """Accuracy of the current model on ``dataset`` (eval mode)."""
        self.model.eval()
        predictions = []
        with no_grad():
            for start in range(0, len(dataset), self.config.eval_batch_size):
                images = dataset.images[start : start + self.config.eval_batch_size]
                predictions.append(self.model(Tensor(images)).data.argmax(axis=1))
        merged = np.concatenate(predictions) if predictions else np.empty(0, dtype=np.int64)
        return accuracy(merged, dataset.labels)
