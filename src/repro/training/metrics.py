"""Classification metrics over numpy predictions."""

from __future__ import annotations

import numpy as np

__all__ = ["accuracy", "confusion_matrix", "per_class_accuracy"]


def accuracy(predictions: np.ndarray, labels: np.ndarray) -> float:
    """Fraction of matching entries (0.0 for empty input)."""
    predictions = np.asarray(predictions)
    labels = np.asarray(labels)
    if predictions.shape != labels.shape:
        raise ValueError(
            f"predictions {predictions.shape} and labels {labels.shape} differ"
        )
    if predictions.size == 0:
        return 0.0
    return float((predictions == labels).mean())


def confusion_matrix(
    predictions: np.ndarray, labels: np.ndarray, num_classes: int | None = None
) -> np.ndarray:
    """Confusion matrix ``C[true, predicted]`` of integer counts."""
    predictions = np.asarray(predictions, dtype=np.int64)
    labels = np.asarray(labels, dtype=np.int64)
    if num_classes is None:
        num_classes = int(max(predictions.max(initial=0), labels.max(initial=0))) + 1
    matrix = np.zeros((num_classes, num_classes), dtype=np.int64)
    np.add.at(matrix, (labels, predictions), 1)
    return matrix


def per_class_accuracy(
    predictions: np.ndarray, labels: np.ndarray, num_classes: int | None = None
) -> np.ndarray:
    """Recall per class; NaN for classes absent from ``labels``."""
    matrix = confusion_matrix(predictions, labels, num_classes)
    totals = matrix.sum(axis=1).astype(np.float64)
    with np.errstate(invalid="ignore", divide="ignore"):
        return np.where(totals > 0, np.diag(matrix) / totals, np.nan)
