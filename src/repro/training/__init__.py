"""Training loops (standard and adversarial) and classification metrics."""

from repro.training.adversarial import AdversarialTrainer, AdversarialTrainingConfig
from repro.training.metrics import accuracy, confusion_matrix, per_class_accuracy
from repro.training.trainer import Trainer, TrainingConfig, TrainingHistory

__all__ = [
    "AdversarialTrainer",
    "AdversarialTrainingConfig",
    "Trainer",
    "TrainingConfig",
    "TrainingHistory",
    "accuracy",
    "confusion_matrix",
    "per_class_accuracy",
]
