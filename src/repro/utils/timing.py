"""Wall-clock timing helpers used by the experiment harness."""

from __future__ import annotations

import time
from types import TracebackType


class Stopwatch:
    """Measure elapsed wall-clock time, usable as a context manager.

    >>> with Stopwatch() as sw:
    ...     _ = sum(range(1000))
    >>> sw.elapsed >= 0.0
    True
    """

    def __init__(self) -> None:
        self._start: float | None = None
        self._elapsed: float = 0.0

    def start(self) -> "Stopwatch":
        """Start (or restart) the stopwatch."""
        self._start = time.perf_counter()
        return self

    def stop(self) -> float:
        """Stop the stopwatch and return the elapsed seconds."""
        if self._start is None:
            raise RuntimeError("Stopwatch.stop() called before start()")
        self._elapsed = time.perf_counter() - self._start
        self._start = None
        return self._elapsed

    @property
    def elapsed(self) -> float:
        """Elapsed seconds of the last completed interval (or live one)."""
        if self._start is not None:
            return time.perf_counter() - self._start
        return self._elapsed

    def __enter__(self) -> "Stopwatch":
        return self.start()

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> None:
        self.stop()
