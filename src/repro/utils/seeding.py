"""Deterministic random-number handling.

Every stochastic component in the library (weight initialisation, data
generation, Poisson encoding, PGD random starts, data shuffling) receives an
explicit :class:`numpy.random.Generator`.  This module centralises how those
generators are created so that a single integer seed reproduces an entire
experiment bit-for-bit on a given platform.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.config import DEFAULT_SEED


def new_rng(seed: int | np.random.Generator | None = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    Accepts three forms for convenience at API boundaries:

    * ``None`` — use :data:`repro.config.DEFAULT_SEED`.
    * ``int`` — seed a fresh PCG64 generator.
    * an existing ``Generator`` — returned unchanged (pass-through), which
      lets callers thread one generator through a pipeline.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if seed is None:
        seed = DEFAULT_SEED
    return np.random.default_rng(seed)


def spawn_rngs(seed: int | None, count: int) -> list[np.random.Generator]:
    """Create ``count`` statistically independent generators from one seed.

    Uses :class:`numpy.random.SeedSequence` spawning, so sibling generators
    do not overlap even for adjacent seeds.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    root = np.random.SeedSequence(DEFAULT_SEED if seed is None else seed)
    return [np.random.default_rng(child) for child in root.spawn(count)]


class SeedSequence:
    """A small helper that hands out deterministic child seeds by name.

    Experiment drivers use this to give each `(Vth, T)` combination its own
    seed derived from the experiment seed and the combination identity, so
    grid cells are independent of evaluation order::

        seeds = SeedSequence(1234)
        rng = seeds.rng_for("train", vth=1.0, t=48)
    """

    def __init__(self, seed: int | None = None) -> None:
        self._seed = DEFAULT_SEED if seed is None else int(seed)

    @property
    def seed(self) -> int:
        """The root integer seed."""
        return self._seed

    def child_seed(self, *key: object) -> int:
        """Derive a stable 63-bit child seed from ``key`` components."""
        material = repr((self._seed,) + tuple(_normalize(part) for part in key))
        # FNV-1a over the repr keeps this dependency-free and stable across
        # runs (unlike hash(), which is salted per process).
        acc = 0xCBF29CE484222325
        for byte in material.encode("utf-8"):
            acc ^= byte
            acc = (acc * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
        return acc & 0x7FFFFFFFFFFFFFFF

    def rng_for(self, *key: object) -> np.random.Generator:
        """Return a generator seeded from :meth:`child_seed` of ``key``."""
        return np.random.default_rng(self.child_seed(*key))


def _normalize(part: object) -> object:
    """Make seed-key components stable (floats via repr, tuples recursed)."""
    if isinstance(part, float):
        return repr(part)
    if isinstance(part, Sequence) and not isinstance(part, (str, bytes)):
        return tuple(_normalize(item) for item in part)
    return part
