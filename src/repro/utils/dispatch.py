"""MRO-based trust checks for paired fast-path methods.

Several hot paths in the reproduction pair a canonical method with a
graph-free "twin" that must implement the exact same semantics on raw
numpy arrays (``step``/``step_numpy`` on neuron cells, ``forward``/
``forward_numpy`` on synaptic transforms, ``_perturb``/``generate_shared``
on attacks).  A twin may only be trusted when it was written *for* the
class whose primary method runs — a subclass overriding the primary
without overriding the twin would otherwise silently execute mismatched
base-class semantics on the fast path.
"""

from __future__ import annotations

__all__ = ["has_trusted_twin"]


def has_trusted_twin(obj: object, primary: str, twin: str) -> bool:
    """Whether ``obj`` can be trusted on a fast path keyed by ``primary``.

    True iff ``twin`` exists and is defined at (or below) the class in the
    MRO that defines ``primary``.  A subclass overriding ``primary`` (e.g.
    custom ``step`` dynamics) without a matching ``twin`` override must
    fall back to the canonical path instead of silently inheriting a
    mismatched fast-path implementation.
    """
    mro = type(obj).__mro__
    twin_cls = next((c for c in mro if twin in vars(c)), None)
    if twin_cls is None:
        return False
    primary_cls = next((c for c in mro if primary in vars(c)), None)
    if primary_cls is None:
        return True
    return mro.index(twin_cls) <= mro.index(primary_cls)
