"""Lightweight array / state-dict persistence on top of ``numpy.savez``.

Model parameters and experiment result grids are persisted as compressed
``.npz`` archives of flat ``name -> array`` mappings.  JSON-friendly
metadata can ride along under a reserved key.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

_METADATA_KEY = "__repro_metadata__"


def save_npz(
    path: str | Path,
    arrays: dict[str, np.ndarray],
    metadata: dict | None = None,
) -> Path:
    """Save ``arrays`` (plus optional JSON-serialisable ``metadata``).

    Returns the path written.  Parent directories are created on demand.
    """
    path = Path(path)
    if _METADATA_KEY in arrays:
        raise ValueError(f"array name {_METADATA_KEY!r} is reserved")
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = dict(arrays)
    if metadata is not None:
        encoded = json.dumps(metadata, sort_keys=True)
        payload[_METADATA_KEY] = np.frombuffer(encoded.encode("utf-8"), dtype=np.uint8)
    np.savez_compressed(path, **payload)
    return path


def load_npz(path: str | Path) -> tuple[dict[str, np.ndarray], dict | None]:
    """Load arrays and metadata previously written by :func:`save_npz`."""
    with np.load(Path(path)) as archive:
        arrays = {name: archive[name] for name in archive.files if name != _METADATA_KEY}
        metadata = None
        if _METADATA_KEY in archive.files:
            raw = archive[_METADATA_KEY].tobytes().decode("utf-8")
            metadata = json.loads(raw)
    return arrays, metadata
