"""Lightweight array / state-dict persistence on top of ``numpy.savez``.

Model parameters and experiment result grids are persisted as compressed
``.npz`` archives of flat ``name -> array`` mappings.  JSON-friendly
metadata can ride along under a reserved key.

Writes are atomic (temp file + ``os.replace``), so concurrent writers —
e.g. engine worker processes checkpointing trained weights into a shared
cache directory — never leave a half-written archive behind.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import numpy as np

_METADATA_KEY = "__repro_metadata__"


def save_npz(
    path: str | Path,
    arrays: dict[str, np.ndarray],
    metadata: dict | None = None,
) -> Path:
    """Atomically save ``arrays`` (plus optional JSON-serialisable ``metadata``).

    Returns the path written.  Parent directories are created on demand.
    The archive appears under its final name only once fully written, so
    readers racing a writer see either the old file or the new one, never
    a torn archive.
    """
    path = Path(path)
    if path.suffix != ".npz":
        # numpy appends ".npz" to names missing the suffix, which would
        # break the temp-file rename below; normalise up front instead.
        path = path.with_name(path.name + ".npz")
    if _METADATA_KEY in arrays:
        raise ValueError(f"array name {_METADATA_KEY!r} is reserved")
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = dict(arrays)
    if metadata is not None:
        encoded = json.dumps(metadata, sort_keys=True)
        payload[_METADATA_KEY] = np.frombuffer(encoded.encode("utf-8"), dtype=np.uint8)
    # Leading dot: temp files must never match the final-archive naming
    # scheme, or directory scans (e.g. the engine's cache maintenance)
    # would count — and could delete — an archive mid-write.
    tmp = path.with_name(f".{path.stem}.{os.getpid()}.tmp.npz")
    try:
        np.savez_compressed(tmp, **payload)
        os.replace(tmp, path)
    finally:
        tmp.unlink(missing_ok=True)
    return path


def load_npz(path: str | Path) -> tuple[dict[str, np.ndarray], dict | None]:
    """Load arrays and metadata previously written by :func:`save_npz`."""
    with np.load(Path(path)) as archive:
        arrays = {name: archive[name] for name in archive.files if name != _METADATA_KEY}
        metadata = None
        if _METADATA_KEY in archive.files:
            raw = archive[_METADATA_KEY].tobytes().decode("utf-8")
            metadata = json.loads(raw)
    return arrays, metadata


def load_npz_metadata(path: str | Path) -> dict | None:
    """Load *only* the metadata of an archive written by :func:`save_npz`.

    ``np.load`` maps npz members lazily, so this decompresses just the
    metadata record — the bulk arrays are never touched.  Directory-wide
    scans (weight-cache neighbour index, GC ancestor tracking) rely on
    this staying cheap for archives holding megabytes of parameters.
    Returns ``None`` when the archive carries no metadata.
    """
    with np.load(Path(path)) as archive:
        if _METADATA_KEY not in archive.files:
            return None
        raw = archive[_METADATA_KEY].tobytes().decode("utf-8")
    return json.loads(raw)
