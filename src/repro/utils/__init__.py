"""Shared utilities: seeding, logging, serialization, timing, dispatch."""

from repro.utils.dispatch import has_trusted_twin
from repro.utils.logging import get_logger
from repro.utils.seeding import SeedSequence, new_rng, spawn_rngs
from repro.utils.serialization import load_npz, save_npz
from repro.utils.timing import Stopwatch

__all__ = [
    "SeedSequence",
    "Stopwatch",
    "get_logger",
    "has_trusted_twin",
    "load_npz",
    "new_rng",
    "save_npz",
    "spawn_rngs",
]
