"""Library-wide logging configuration.

The library logs under the ``repro`` namespace and never configures the
root logger.  :func:`get_logger` attaches a single stream handler to the
``repro`` parent logger the first time it is called, which keeps output
readable when the library is used from scripts while staying silent in
pytest unless requested.
"""

from __future__ import annotations

import logging

_FORMAT = "%(asctime)s %(name)s %(levelname)s %(message)s"
_configured = False


def get_logger(name: str) -> logging.Logger:
    """Return a logger below the ``repro`` namespace.

    ``get_logger("robustness")`` yields the ``repro.robustness`` logger.
    Passing a name that already starts with ``repro`` is also accepted.
    """
    global _configured
    if not _configured:
        parent = logging.getLogger("repro")
        if not parent.handlers:
            handler = logging.StreamHandler()
            handler.setFormatter(logging.Formatter(_FORMAT))
            parent.addHandler(handler)
            parent.setLevel(logging.INFO)
        _configured = True
    full = name if name.startswith("repro") else f"repro.{name}"
    return logging.getLogger(full)


def set_verbosity(level: int | str) -> None:
    """Set the log level for the whole ``repro`` namespace."""
    logging.getLogger("repro").setLevel(level)
