"""Plain-text rendering of heat maps and robustness curves.

The benchmarks print these tables — they are the textual equivalents of
the paper's Figures 6-9 (this environment has no plotting stack).
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

__all__ = ["render_curve_table", "render_heatmap", "render_sparkline"]

_SHADES = " .:-=+*#%@"


def render_heatmap(
    grid: np.ndarray,
    row_labels: Sequence[str],
    col_labels: Sequence[str],
    title: str = "",
    row_axis: str = "T",
    col_axis: str = "Vth",
    as_percent: bool = True,
) -> str:
    """Render a 2-D array as an aligned text table with shade glyphs.

    NaN cells (non-learnable combinations excluded from the security
    study) render as ``--``.
    """
    grid = np.asarray(grid, dtype=np.float64)
    if grid.ndim != 2:
        raise ValueError(f"expected a 2-d grid, got shape {grid.shape}")
    if grid.shape != (len(row_labels), len(col_labels)):
        raise ValueError(
            f"grid shape {grid.shape} does not match labels "
            f"({len(row_labels)}, {len(col_labels)})"
        )
    cell_width = 7
    lines: list[str] = []
    if title:
        lines.append(title)
    header = " " * 6 + "".join(f"{label:>{cell_width}}" for label in col_labels)
    lines.append(header)
    for row_index, row_label in enumerate(row_labels):
        cells = []
        for value in grid[row_index]:
            if np.isnan(value):
                cells.append(f"{'--':>{cell_width}}")
            else:
                shown = value * 100.0 if as_percent else value
                shade = _SHADES[min(9, max(0, int(np.nan_to_num(value) * 9.99)))]
                cells.append(f"{shown:>5.0f}{shade} ")
        lines.append(f"{row_label:>5} " + "".join(cells))
    lines.append(f"rows: {row_axis} (descending), cols: {col_axis}")
    return "\n".join(lines)


def render_curve_table(
    epsilons: Sequence[float],
    curves: dict[str, Sequence[float]],
    title: str = "",
    as_percent: bool = True,
) -> str:
    """Render robustness-vs-epsilon series side by side (paper Fig. 1/9).

    ``curves`` maps a series label to its robustness values, aligned with
    ``epsilons``.
    """
    for label, values in curves.items():
        if len(values) != len(epsilons):
            raise ValueError(
                f"series {label!r} has {len(values)} points for "
                f"{len(epsilons)} epsilons"
            )
    label_width = max(12, max((len(label) for label in curves), default=12) + 2)
    lines: list[str] = []
    if title:
        lines.append(title)
    header = f"{'epsilon':>{label_width}}" + "".join(f"{e:>8.2f}" for e in epsilons)
    lines.append(header)
    for label, values in curves.items():
        shown = [v * 100.0 if as_percent else v for v in values]
        lines.append(f"{label:>{label_width}}" + "".join(f"{v:>8.1f}" for v in shown))
    return "\n".join(lines)


def render_sparkline(values: Sequence[float]) -> str:
    """One-line shade strip for a sequence of values in [0, 1]."""
    return "".join(
        _SHADES[min(9, max(0, int(np.nan_to_num(v) * 9.99)))] for v in values
    )
