"""Algorithm 1: the grid exploration driver.

Pseudo-code of the paper (Algorithm 1) and its mapping here:

.. code-block:: text

    for i in 1..n:                      # v_thresholds        (cell tasks)
      for j in 1..m:                    # time_windows        (cell tasks)
        Train(Sij)                      # learnability.train_and_score
        if Accuracy(Sij) >= Ath:        # LearnabilityResult.learnable
          for k in 1..p:                # epsilons
            X* = PGD(Sij, eps_k, Xt)    # attacks.pgd via config.build_attack
            Robustness(eps_k) = 1 - Adv/|D|   # attacks.metrics

Every grid cell derives independent child seeds for model initialisation,
training shuffling and attack randomness from the root seed, so cells are
reproducible in isolation and independent of evaluation order.

Execution is delegated to :mod:`repro.engine`: the explorer expands its
config into picklable :class:`~repro.engine.job.CellTask` jobs and hands
them to the scheduler, which can run them serially or across worker
processes (``jobs > 1``) with bitwise-identical results, and checkpoint /
resume them through a :class:`~repro.engine.cache.CellCache`.
"""

from __future__ import annotations

from collections.abc import Callable
from typing import TYPE_CHECKING

from repro.data.dataset import ArrayDataset
from repro.errors import ExplorationError
from repro.nn.module import Module
from repro.robustness.config import ExplorationConfig
from repro.robustness.results import CellResult, ExplorationResult
from repro.utils.logging import get_logger
from repro.utils.seeding import SeedSequence

if TYPE_CHECKING:  # imported lazily at runtime: engine.job imports this package
    from repro.engine.cache import CellCache
    from repro.engine.job import CellTask, ExplorationJobContext

__all__ = ["RobustnessExplorer"]

_logger = get_logger("robustness")

ModelFactory = Callable[[float, int, int], Module]
"""``(v_th, time_window, seed) -> model`` builder used per grid cell."""


class RobustnessExplorer:
    """Runs Algorithm 1 over the configured ``(Vth, T)`` grid.

    Parameters
    ----------
    model_factory:
        Callable ``(v_th, time_window, seed) -> Module`` producing a fresh,
        untrained model per cell (e.g. a lambda around
        :func:`repro.models.spiking_lenet.build_spiking_lenet_mini`).
    train_set, test_set:
        Datasets for the Train() step and the security analysis.
    config:
        Grid, gate and attack settings.
    """

    def __init__(
        self,
        model_factory: ModelFactory,
        train_set: ArrayDataset,
        test_set: ArrayDataset,
        config: ExplorationConfig | None = None,
    ) -> None:
        self.model_factory = model_factory
        self.train_set = train_set
        self.test_set = test_set
        self.config = config or ExplorationConfig()
        self.config.validate()
        if len(train_set) == 0 or len(test_set) == 0:
            raise ExplorationError("train and test sets must be non-empty")
        self._seeds = SeedSequence(self.config.seed)

    @property
    def context(self) -> "ExplorationJobContext":
        """The engine job context shared by every cell of this exploration."""
        from repro.engine.job import ExplorationJobContext

        return ExplorationJobContext(
            model_factory=self.model_factory,
            train_set=self.train_set,
            test_set=self.test_set,
            config=self.config,
        )

    # -- single cell ------------------------------------------------------------

    def tasks(self) -> "list[CellTask]":
        """Deterministically seeded task list covering the whole grid."""
        from repro.engine.job import build_cell_tasks

        return build_cell_tasks(self.config)

    def explore_cell(self, v_th: float, time_window: int) -> CellResult:
        """Run learnability + security analysis for one combination."""
        from repro.engine.job import make_cell_task, run_cell_task

        task = make_cell_task(self._seeds, 0, v_th, time_window)
        return run_cell_task(self.context, task)

    # -- full grid -----------------------------------------------------------------

    def run(
        self,
        verbose: bool = False,
        jobs: int = 1,
        cache: "CellCache | None" = None,
        resume: bool = False,
        start_method: str = "auto",
        context_spec=None,
        weight_cache=None,
        stack: int = 1,
    ) -> ExplorationResult:
        """Execute the full grid exploration and collect results.

        Parameters
        ----------
        verbose:
            Log one line per completed cell.
        jobs:
            Worker processes for cell evaluation; ``1`` runs serially.
            Parallel runs produce bitwise-identical cell values.
        cache:
            Optional cell checkpoint store; completed cells are always
            written through it.
        resume:
            Reuse cells already present in ``cache`` (skip recomputing
            them) — the "continue an interrupted run" switch.  Requires
            ``cache``.
        start_method:
            Pool backend: ``auto`` (prefer fork), ``fork`` or ``spawn``
            (needs ``context_spec``).
        context_spec:
            :class:`~repro.engine.scheduler.ContextSpec` rebuilding this
            exploration's job context inside spawn workers.
        weight_cache:
            Optional :class:`~repro.engine.cache.WeightCache`.  Trained
            cell weights are always written through it; with ``resume``
            they replace retraining, so a re-sweep with new ε budgets
            only recomputes the security analysis.
        stack:
            Pack up to ``stack`` compatible cells into one
            :class:`~repro.snn.stack.VariantStack` fused pass
            (:func:`~repro.engine.stacking.run_stacked_cell_tasks`).
            Stacked execution is in-process and per-cell bitwise
            identical to the unstacked path; ``1`` (the default) keeps
            the per-cell scheduler, where ``jobs``/``start_method``
            apply.
        """
        from repro.engine.costs import cached_cell_costs, order_cell_tasks
        from repro.engine.scheduler import run_cell_tasks
        from repro.engine.stacking import run_stacked_cell_tasks

        tasks = self.tasks()
        total = len(tasks)
        done = 0

        def progress(task: "CellTask", cell: CellResult, from_cache: bool) -> None:
            nonlocal done
            done += 1
            if not verbose:
                return
            status = "learnable" if cell.learnable else "rejected"
            if from_cache:
                status += " (cached)"
            _logger.info(
                "[%d/%d] Vth=%g T=%d acc=%.3f %s %s",
                done,
                total,
                task.v_th,
                task.time_window,
                cell.clean_accuracy,
                status,
                {e: round(r, 3) for e, r in cell.robustness.items()},
            )

        context = self.context
        context.weight_cache = weight_cache
        context.reuse_weights = weight_cache is not None and resume
        if stack > 1:
            cells, stats = run_stacked_cell_tasks(
                context,
                tasks,
                stack=stack,
                cache=cache,
                resume=resume,
                progress=progress,
            )
        else:
            costs = cached_cell_costs(cache.directory) if cache is not None else None
            cells, stats = run_cell_tasks(
                context,
                tasks,
                jobs=jobs,
                cache=cache,
                resume=resume,
                progress=progress,
                start_method=start_method,
                context_spec=context_spec,
                pending_order=lambda pending: order_cell_tasks(pending, costs),
            )
        return ExplorationResult(
            v_thresholds=self.config.v_thresholds,
            time_windows=self.config.time_windows,
            cells=cells,
            metadata={
                "attack": self.config.attack,
                "attack_steps": self.config.attack_steps,
                "epsilons": list(self.config.epsilons),
                "accuracy_threshold": self.config.accuracy_threshold,
                "seed": self.config.seed,
                "num_train": len(self.train_set),
                "num_test": len(self.test_set),
                "engine": stats.as_dict(),
            },
        )
