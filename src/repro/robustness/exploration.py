"""Algorithm 1: the grid exploration driver.

Pseudo-code of the paper (Algorithm 1) and its mapping here:

.. code-block:: text

    for i in 1..n:                      # v_thresholds        (run loop)
      for j in 1..m:                    # time_windows        (run loop)
        Train(Sij)                      # learnability.train_and_score
        if Accuracy(Sij) >= Ath:        # LearnabilityResult.learnable
          for k in 1..p:                # epsilons
            X* = PGD(Sij, eps_k, Xt)    # attacks.pgd via config.build_attack
            Robustness(eps_k) = 1 - Adv/|D|   # attacks.metrics

Every grid cell derives independent child seeds for model initialisation,
training shuffling and attack randomness from the root seed, so cells are
reproducible in isolation and independent of evaluation order.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import replace

from repro.data.dataset import ArrayDataset
from repro.errors import ExplorationError
from repro.nn.module import Module
from repro.robustness.config import ExplorationConfig
from repro.robustness.learnability import train_and_score
from repro.robustness.results import CellResult, ExplorationResult
from repro.robustness.security import robustness_curve
from repro.utils.logging import get_logger
from repro.utils.seeding import SeedSequence

__all__ = ["RobustnessExplorer"]

_logger = get_logger("robustness")

ModelFactory = Callable[[float, int, int], Module]
"""``(v_th, time_window, seed) -> model`` builder used per grid cell."""


class RobustnessExplorer:
    """Runs Algorithm 1 over the configured ``(Vth, T)`` grid.

    Parameters
    ----------
    model_factory:
        Callable ``(v_th, time_window, seed) -> Module`` producing a fresh,
        untrained model per cell (e.g. a lambda around
        :func:`repro.models.spiking_lenet.build_spiking_lenet_mini`).
    train_set, test_set:
        Datasets for the Train() step and the security analysis.
    config:
        Grid, gate and attack settings.
    """

    def __init__(
        self,
        model_factory: ModelFactory,
        train_set: ArrayDataset,
        test_set: ArrayDataset,
        config: ExplorationConfig | None = None,
    ) -> None:
        self.model_factory = model_factory
        self.train_set = train_set
        self.test_set = test_set
        self.config = config or ExplorationConfig()
        self.config.validate()
        if len(train_set) == 0 or len(test_set) == 0:
            raise ExplorationError("train and test sets must be non-empty")
        self._seeds = SeedSequence(self.config.seed)

    # -- single cell ------------------------------------------------------------

    def explore_cell(self, v_th: float, time_window: int) -> CellResult:
        """Run learnability + security analysis for one combination."""
        cell_seed = self._seeds.child_seed("cell", v_th, time_window)
        model = self.model_factory(v_th, time_window, cell_seed)
        training = replace(self.config.training, seed=cell_seed & 0x7FFFFFFF)
        learn = train_and_score(
            model,
            self.train_set,
            self.test_set,
            training,
            self.config.accuracy_threshold,
        )
        robustness: dict[float, float] = {}
        if learn.learnable:
            attack_seed = self._seeds.child_seed("attack", v_th, time_window)
            curve = robustness_curve(
                model,
                self.test_set,
                self.config.epsilons,
                lambda eps: self.config.build_attack(eps, seed=attack_seed),
                label=f"(Vth={v_th:g}, T={time_window})",
                batch_size=self.config.attack_batch_size,
            )
            robustness = dict(zip(curve.epsilons, curve.robustness))
        return CellResult(
            v_th=float(v_th),
            time_window=int(time_window),
            clean_accuracy=learn.clean_accuracy,
            learnable=learn.learnable,
            diverged=learn.diverged,
            robustness=robustness,
        )

    # -- full grid -----------------------------------------------------------------

    def run(self, verbose: bool = False) -> ExplorationResult:
        """Execute the full grid exploration and collect results."""
        cells: list[CellResult] = []
        total = len(self.config.v_thresholds) * len(self.config.time_windows)
        done = 0
        for v_th in self.config.v_thresholds:
            for time_window in self.config.time_windows:
                cell = self.explore_cell(v_th, time_window)
                cells.append(cell)
                done += 1
                if verbose:
                    status = "learnable" if cell.learnable else "rejected"
                    _logger.info(
                        "[%d/%d] Vth=%g T=%d acc=%.3f %s %s",
                        done,
                        total,
                        v_th,
                        time_window,
                        cell.clean_accuracy,
                        status,
                        {e: round(r, 3) for e, r in cell.robustness.items()},
                    )
        return ExplorationResult(
            v_thresholds=self.config.v_thresholds,
            time_windows=self.config.time_windows,
            cells=cells,
            metadata={
                "attack": self.config.attack,
                "attack_steps": self.config.attack_steps,
                "epsilons": list(self.config.epsilons),
                "accuracy_threshold": self.config.accuracy_threshold,
                "seed": self.config.seed,
                "num_train": len(self.train_set),
                "num_test": len(self.test_set),
            },
        )
