"""Learnability study (Algorithm 1, lines 3-4).

Trains one ``(Vth, T)`` instantiation and checks whether it clears the
baseline-accuracy gate ``Ath``.  "There is indeed no interest in studying
the robustness of SNNs with low baseline performance" (paper §V).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.data.dataset import ArrayDataset
from repro.errors import TrainingError
from repro.nn.module import Module
from repro.training.trainer import Trainer, TrainingConfig, TrainingHistory

__all__ = ["LearnabilityResult", "train_and_score"]


@dataclass(frozen=True)
class LearnabilityResult:
    """Outcome of training one grid cell."""

    clean_accuracy: float
    """Test accuracy after training (the heat-map value of paper Fig. 6)."""

    learnable: bool
    """Whether ``clean_accuracy >= Ath``."""

    diverged: bool
    """True when training aborted on a non-finite loss."""

    history: TrainingHistory
    """Per-epoch training record."""


def train_and_score(
    model: Module,
    train_set: ArrayDataset,
    test_set: ArrayDataset,
    training_config: TrainingConfig,
    accuracy_threshold: float,
) -> LearnabilityResult:
    """Train ``model`` and evaluate the learnability gate.

    A diverged run (non-finite loss) is treated as non-learnable with zero
    accuracy rather than an error: the paper's heat map (Fig. 6) includes
    such failed cells as low-accuracy entries.
    """
    trainer = Trainer(model, training_config)
    try:
        history = trainer.fit(train_set)
        clean_accuracy = trainer.evaluate(test_set)
        diverged = False
    except TrainingError:
        history = trainer.history
        clean_accuracy = 0.0
        diverged = True
    return LearnabilityResult(
        clean_accuracy=clean_accuracy,
        learnable=clean_accuracy >= accuracy_threshold,
        diverged=diverged,
        history=history,
    )
