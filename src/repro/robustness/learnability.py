"""Learnability study (Algorithm 1, lines 3-4).

Trains one ``(Vth, T)`` instantiation and checks whether it clears the
baseline-accuracy gate ``Ath``.  "There is indeed no interest in studying
the robustness of SNNs with low baseline performance" (paper §V).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.data.dataset import ArrayDataset
from repro.errors import TrainingError
from repro.nn.module import Module
from repro.training.trainer import Trainer, TrainingConfig, TrainingHistory

__all__ = ["LearnabilityResult", "train_and_score"]


@dataclass(frozen=True)
class LearnabilityResult:
    """Outcome of training one grid cell."""

    clean_accuracy: float
    """Test accuracy after training (the heat-map value of paper Fig. 6)."""

    learnable: bool
    """Whether ``clean_accuracy >= Ath``."""

    diverged: bool
    """True when training aborted on a non-finite loss."""

    history: TrainingHistory
    """Per-epoch training record."""

    optimizer_state: dict[str, np.ndarray] | None = field(
        default=None, compare=False, repr=False
    )
    """Adam moments at the end of training (``None`` for diverged runs).
    Archived next to the weights so a later higher-budget resume is a
    bitwise continuation instead of a re-anneal."""


def train_and_score(
    model: Module,
    train_set: ArrayDataset,
    test_set: ArrayDataset,
    training_config: TrainingConfig,
    accuracy_threshold: float,
    *,
    initial_state: dict[str, np.ndarray] | None = None,
    start_epoch: int = 0,
    initial_optimizer_state: dict[str, np.ndarray] | None = None,
) -> LearnabilityResult:
    """Train ``model`` and evaluate the learnability gate.

    A diverged run (non-finite loss) is treated as non-learnable with zero
    accuracy rather than an error: the paper's heat map (Fig. 6) includes
    such failed cells as low-accuracy entries.

    ``initial_state``/``start_epoch`` form the resume-from-weights entry
    point used by warm-started search cells and promoted partial-budget
    checkpoints: the state is loaded before training and only the epochs
    past ``start_epoch`` execute.  Passing the checkpoint's
    ``initial_optimizer_state`` alongside makes the resume a bitwise
    continuation (see :meth:`Trainer.fit` for the shuffle and
    optimizer-state semantics).  The gate itself is unchanged — the
    final accuracy is scored against ``accuracy_threshold`` exactly as a
    cold run's would be.
    """
    if initial_state is not None:
        model.load_state_dict(initial_state)
    trainer = Trainer(model, training_config)
    try:
        history = trainer.fit(
            train_set,
            start_epoch=start_epoch,
            optimizer_state=initial_optimizer_state,
        )
        clean_accuracy = trainer.evaluate(test_set)
        diverged = False
        optimizer_state = trainer.optimizer.state_dict()
    except TrainingError:
        history = trainer.history
        clean_accuracy = 0.0
        diverged = True
        optimizer_state = None
    return LearnabilityResult(
        clean_accuracy=clean_accuracy,
        learnable=clean_accuracy >= accuracy_threshold,
        diverged=diverged,
        history=history,
        optimizer_state=optimizer_state,
    )
