"""The paper's core contribution: structural-parameter robustness exploration.

Implements Algorithm 1 end to end:

1. For every ``(Vth, T)`` combination in a grid, train an SNN in the
   spiking domain (:mod:`repro.robustness.learnability`).
2. Gate on the learnability threshold ``Ath`` (70 % in the paper).
3. For every noise budget ``ε``, attack the surviving models with
   white-box PGD and record
   ``Robustness(ε) = 1 − #successes / |D|``
   (:mod:`repro.robustness.security`).

Results are collected into serialisable grids
(:mod:`repro.robustness.results`) and rendered as the paper's heat maps
and robustness curves (:mod:`repro.robustness.report`).
"""

from repro.robustness.config import ExplorationConfig, make_attack
from repro.robustness.exploration import RobustnessExplorer
from repro.robustness.learnability import LearnabilityResult, train_and_score
from repro.robustness.report import render_curve_table, render_heatmap
from repro.robustness.results import CellResult, ExplorationResult
from repro.robustness.security import RobustnessCurve, robustness_curve
from repro.robustness.selection import (
    DesignRecommendation,
    pareto_front,
    select_sweet_spots,
)

__all__ = [
    "CellResult",
    "DesignRecommendation",
    "ExplorationConfig",
    "ExplorationResult",
    "LearnabilityResult",
    "RobustnessCurve",
    "RobustnessExplorer",
    "make_attack",
    "pareto_front",
    "render_curve_table",
    "render_heatmap",
    "robustness_curve",
    "select_sweet_spots",
    "train_and_score",
]
