"""Security study (Algorithm 1, lines 5-16).

For a trained model, sweeps the adversarial noise budget and records the
robustness at each ε.  Used both by the grid exploration and by the
curve-style experiments (paper Figs. 1 and 9).
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass

from repro.attacks.base import Attack
from repro.attacks.metrics import AttackEvaluation, evaluate_attack_sweep
from repro.data.dataset import ArrayDataset
from repro.nn.module import Module

__all__ = ["RobustnessCurve", "robustness_curve"]

AttackBuilder = Callable[[float], Attack]


@dataclass(frozen=True)
class RobustnessCurve:
    """Robustness as a function of the noise budget for one model."""

    label: str
    epsilons: tuple[float, ...]
    robustness: tuple[float, ...]
    evaluations: tuple[AttackEvaluation, ...]

    def robustness_at(self, epsilon: float) -> float:
        """Robustness at a specific budget (must be one of the sweep points)."""
        try:
            index = self.epsilons.index(epsilon)
        except ValueError:
            raise KeyError(f"epsilon {epsilon} not in sweep {self.epsilons}") from None
        return self.robustness[index]

    def as_dict(self) -> dict:
        """JSON-friendly representation."""
        return {
            "label": self.label,
            "epsilons": list(self.epsilons),
            "robustness": list(self.robustness),
            "evaluations": [e.as_dict() for e in self.evaluations],
        }


def robustness_curve(
    model: Module,
    dataset: ArrayDataset,
    epsilons: Sequence[float],
    attack_builder: AttackBuilder,
    label: str = "model",
    batch_size: int = 32,
) -> RobustnessCurve:
    """Sweep ``epsilons`` and evaluate the attack at each budget.

    ``attack_builder(eps)`` constructs a fresh attack per budget so
    stateful attacks (PGD random start) stay independent across points.
    Delegates to :func:`~repro.attacks.metrics.evaluate_attack_sweep`,
    which shares the ε-independent work (clean predictions, the white-box
    gradient of single-step attacks, fused adversarial prediction) across
    the whole curve — results are identical to the per-ε loop.
    """
    evaluations = evaluate_attack_sweep(
        model, attack_builder, epsilons, dataset, batch_size=batch_size
    )
    return RobustnessCurve(
        label=label,
        epsilons=tuple(float(e) for e in epsilons),
        robustness=tuple(e.robustness for e in evaluations),
        evaluations=tuple(evaluations),
    )
