"""Result containers for the grid exploration, with JSON persistence."""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

__all__ = ["CellResult", "ExplorationResult"]


@dataclass(frozen=True)
class CellResult:
    """Everything Algorithm 1 records for one ``(Vth, T)`` combination."""

    v_th: float
    time_window: int
    clean_accuracy: float
    learnable: bool
    diverged: bool = False
    robustness: dict[float, float] = field(default_factory=dict)
    """Map ``epsilon -> Robustness(epsilon)``; empty for non-learnable cells."""

    elapsed_seconds: float = field(default=0.0, compare=False)
    """Wall-clock time spent evaluating this cell (train + attacks).

    Excluded from equality so scientifically identical runs compare equal
    regardless of where or how fast they executed.
    """

    phase_seconds: dict[str, float] = field(default_factory=dict, compare=False)
    """Wall-clock breakdown of :attr:`elapsed_seconds` by phase.

    Keys are a subset of ``train_s`` (the Train()+gate step, or the
    weight-cache load that replaced it), ``attack_s`` (the security
    sweep) and ``eval_s`` (clean-accuracy evaluation, when it runs as a
    separate phase).  Provenance like :attr:`elapsed_seconds` — excluded
    from equality and stripped by ``scripts/compare_results.py``.
    """

    worker: str = field(default="", compare=False)
    """Process name that evaluated the cell (``MainProcess`` when serial)."""

    stack_size: int = field(default=1, compare=False)
    """How many grid cells shared the fused pass that produced this one
    (``1`` = unstacked).  Execution provenance like :attr:`worker` —
    excluded from equality and stripped by ``scripts/compare_results.py``,
    since stacked and unstacked runs are bitwise-identical science.
    """

    stack_index: int = field(default=0, compare=False)
    """This cell's lane within its variant stack (``0`` when unstacked)."""

    warm_start: dict | None = field(default=None, compare=False)
    """Provenance of the warm-start initialisation, when one was used.

    Keys: ``source_file`` (archive filename the initial weights came
    from), ``source_key`` / ``source_epochs`` (which cell trained them,
    for how long), ``start_epoch`` (epochs skipped here) and ``distance``
    (normalised structural-parameter distance; ``0`` for the cell's own
    lower-budget checkpoint).  ``None`` for cold-started cells.  Execution
    provenance like :attr:`worker` — excluded from equality and stripped
    by ``scripts/compare_results.py``; the bias gate (docs/search.md) is
    what guards the science behind it.
    """

    def as_dict(self) -> dict:
        """JSON-friendly representation (epsilon keys stringified)."""
        return {
            "v_th": self.v_th,
            "time_window": self.time_window,
            "clean_accuracy": self.clean_accuracy,
            "learnable": self.learnable,
            "diverged": self.diverged,
            "robustness": {repr(k): v for k, v in self.robustness.items()},
            "elapsed_seconds": self.elapsed_seconds,
            "phase_seconds": dict(self.phase_seconds),
            "worker": self.worker,
            "stack_size": self.stack_size,
            "stack_index": self.stack_index,
            "warm_start": dict(self.warm_start) if self.warm_start else None,
        }

    @staticmethod
    def from_dict(payload: dict) -> "CellResult":
        """Inverse of :meth:`as_dict`."""
        return CellResult(
            v_th=float(payload["v_th"]),
            time_window=int(payload["time_window"]),
            clean_accuracy=float(payload["clean_accuracy"]),
            learnable=bool(payload["learnable"]),
            diverged=bool(payload.get("diverged", False)),
            robustness={float(k): float(v) for k, v in payload["robustness"].items()},
            elapsed_seconds=float(payload.get("elapsed_seconds", 0.0)),
            phase_seconds={
                str(k): float(v)
                for k, v in payload.get("phase_seconds", {}).items()
            },
            worker=str(payload.get("worker", "")),
            stack_size=int(payload.get("stack_size", 1)),
            stack_index=int(payload.get("stack_index", 0)),
            warm_start=dict(payload["warm_start"])
            if payload.get("warm_start")
            else None,
        )


class ExplorationResult:
    """Grid of :class:`CellResult` with heat-map accessors.

    Grids are returned as arrays of shape ``(len(time_windows),
    len(v_thresholds))`` with time windows in *descending* row order,
    matching the paper's figure orientation (high ``T`` at the top).
    """

    def __init__(
        self,
        v_thresholds: tuple[float, ...],
        time_windows: tuple[int, ...],
        cells: list[CellResult],
        metadata: dict | None = None,
    ) -> None:
        self.v_thresholds = tuple(float(v) for v in v_thresholds)
        self.time_windows = tuple(int(t) for t in time_windows)
        self.metadata = dict(metadata or {})
        self._cells: dict[tuple[float, int], CellResult] = {}
        for cell in cells:
            self._cells[(cell.v_th, cell.time_window)] = cell

    # -- access ---------------------------------------------------------------

    def cell(self, v_th: float, time_window: int) -> CellResult:
        """The result for one combination (KeyError if absent)."""
        return self._cells[(float(v_th), int(time_window))]

    @property
    def cells(self) -> list[CellResult]:
        """All recorded cells (row-major over the declared grid order)."""
        ordered = []
        for t in self.time_windows:
            for v in self.v_thresholds:
                if (v, t) in self._cells:
                    ordered.append(self._cells[(v, t)])
        return ordered

    def _grid(self, getter) -> np.ndarray:
        rows = []
        for t in sorted(self.time_windows, reverse=True):
            row = []
            for v in self.v_thresholds:
                cell = self._cells.get((v, t))
                row.append(np.nan if cell is None else getter(cell))
            rows.append(row)
        return np.array(rows, dtype=np.float64)

    def accuracy_grid(self) -> np.ndarray:
        """Clean-accuracy heat map (paper Fig. 6)."""
        return self._grid(lambda c: c.clean_accuracy)

    def robustness_grid(self, epsilon: float) -> np.ndarray:
        """Adversarial-accuracy heat map at ``epsilon`` (paper Figs. 7, 8).

        Non-learnable cells are NaN (the paper leaves them out of the
        security study).
        """
        eps = float(epsilon)

        def getter(cell: CellResult) -> float:
            return cell.robustness.get(eps, np.nan) if cell.learnable else np.nan

        return self._grid(getter)

    def row_labels(self) -> list[str]:
        """Time-window labels, descending (top row first)."""
        return [str(t) for t in sorted(self.time_windows, reverse=True)]

    def column_labels(self) -> list[str]:
        """Threshold labels in declared order."""
        return [f"{v:g}" for v in self.v_thresholds]

    def learnable_fraction(self) -> float:
        """Fraction of evaluated cells clearing the Ath gate."""
        cells = self.cells
        if not cells:
            return 0.0
        return sum(c.learnable for c in cells) / len(cells)

    def best_cell(self, epsilon: float) -> CellResult:
        """Most robust learnable cell at ``epsilon``."""
        eps = float(epsilon)
        candidates = [c for c in self.cells if c.learnable and eps in c.robustness]
        if not candidates:
            raise ValueError(f"no learnable cell evaluated at epsilon={epsilon}")
        return max(candidates, key=lambda c: c.robustness[eps])

    def worst_cell(self, epsilon: float) -> CellResult:
        """Least robust learnable cell at ``epsilon``."""
        eps = float(epsilon)
        candidates = [c for c in self.cells if c.learnable and eps in c.robustness]
        if not candidates:
            raise ValueError(f"no learnable cell evaluated at epsilon={epsilon}")
        return min(candidates, key=lambda c: c.robustness[eps])

    # -- persistence --------------------------------------------------------------

    def to_json(self, path: str | Path | None = None) -> str:
        """Serialise; optionally also write to ``path``."""
        payload = {
            "v_thresholds": list(self.v_thresholds),
            "time_windows": list(self.time_windows),
            "metadata": self.metadata,
            "cells": [c.as_dict() for c in self.cells],
        }
        text = json.dumps(payload, indent=2, sort_keys=True)
        if path is not None:
            path = Path(path)
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(text)
        return text

    @staticmethod
    def from_json(source: str | Path) -> "ExplorationResult":
        """Load a result written by :meth:`to_json`.

        ``source`` may be a path or the JSON text itself.
        """
        if isinstance(source, Path) or (
            isinstance(source, str) and not source.lstrip().startswith("{")
        ):
            text = Path(source).read_text()
        else:
            text = source
        payload = json.loads(text)
        cells = [CellResult.from_dict(item) for item in payload["cells"]]
        return ExplorationResult(
            v_thresholds=tuple(payload["v_thresholds"]),
            time_windows=tuple(payload["time_windows"]),
            cells=cells,
            metadata=payload.get("metadata"),
        )
