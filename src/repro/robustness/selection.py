"""Trustworthy-SNN design: selecting structural parameters (paper §VI-C).

The output of the paper's methodology is a *design recommendation*: pick
`(Vth, T)` combinations that are robust sweet spots.  This module turns a
finished :class:`~repro.robustness.results.ExplorationResult` into such
recommendations:

* :func:`select_sweet_spots` — the paper's rule: among combinations that
  clear the accuracy gate, rank by robustness at a target budget;
* :func:`pareto_front` — the accuracy/robustness Pareto-optimal set, for
  when the designer wants the full trade-off curve rather than one point.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ExplorationError
from repro.robustness.results import CellResult, ExplorationResult

__all__ = ["DesignRecommendation", "pareto_front", "select_sweet_spots"]


@dataclass(frozen=True)
class DesignRecommendation:
    """One recommended `(Vth, T)` operating point."""

    v_th: float
    time_window: int
    clean_accuracy: float
    robustness: float
    epsilon: float

    def render(self) -> str:
        """One-line human-readable summary."""
        return (
            f"(Vth={self.v_th:g}, T={self.time_window}): "
            f"clean={self.clean_accuracy * 100:.1f}%, "
            f"robustness@eps={self.epsilon:g}={self.robustness * 100:.1f}%"
        )


def _evaluated_cells(result: ExplorationResult, epsilon: float) -> list[CellResult]:
    eps = float(epsilon)
    cells = [c for c in result.cells if c.learnable and eps in c.robustness]
    if not cells:
        raise ExplorationError(
            f"no learnable cell was evaluated at epsilon={epsilon}; "
            f"run the exploration with this budget first"
        )
    return cells


def select_sweet_spots(
    result: ExplorationResult,
    epsilon: float,
    top_k: int = 3,
    min_accuracy: float | None = None,
) -> list[DesignRecommendation]:
    """Rank learnable combinations by robustness at ``epsilon``.

    Parameters
    ----------
    result:
        A completed grid exploration.
    epsilon:
        Target attack budget the deployment must survive.
    top_k:
        Number of recommendations to return (fewer if the grid is small).
    min_accuracy:
        Optional extra clean-accuracy floor on top of the exploration's
        own learnability gate.

    Ties are broken in favour of higher clean accuracy.
    """
    if top_k < 1:
        raise ValueError(f"top_k must be >= 1, got {top_k}")
    eps = float(epsilon)
    cells = _evaluated_cells(result, eps)
    if min_accuracy is not None:
        cells = [c for c in cells if c.clean_accuracy >= min_accuracy]
        if not cells:
            raise ExplorationError(
                f"no evaluated cell reaches clean accuracy {min_accuracy}"
            )
    ranked = sorted(
        cells, key=lambda c: (c.robustness[eps], c.clean_accuracy), reverse=True
    )
    return [
        DesignRecommendation(
            v_th=c.v_th,
            time_window=c.time_window,
            clean_accuracy=c.clean_accuracy,
            robustness=c.robustness[eps],
            epsilon=eps,
        )
        for c in ranked[:top_k]
    ]


def pareto_front(result: ExplorationResult, epsilon: float) -> list[DesignRecommendation]:
    """Accuracy/robustness Pareto-optimal combinations at ``epsilon``.

    A cell is on the front if no other cell is at least as good in both
    clean accuracy and robustness and strictly better in one.  The front
    is returned sorted by descending robustness.
    """
    eps = float(epsilon)
    cells = _evaluated_cells(result, eps)
    front: list[CellResult] = []
    for cell in cells:
        dominated = any(
            other is not cell
            and other.clean_accuracy >= cell.clean_accuracy
            and other.robustness[eps] >= cell.robustness[eps]
            and (
                other.clean_accuracy > cell.clean_accuracy
                or other.robustness[eps] > cell.robustness[eps]
            )
            for other in cells
        )
        if not dominated:
            front.append(cell)
    front.sort(key=lambda c: c.robustness[eps], reverse=True)
    return [
        DesignRecommendation(
            v_th=c.v_th,
            time_window=c.time_window,
            clean_accuracy=c.clean_accuracy,
            robustness=c.robustness[eps],
            epsilon=eps,
        )
        for c in front
    ]
