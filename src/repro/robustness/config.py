"""Configuration of the robustness exploration (Algorithm 1 inputs)."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.attacks.base import Attack
from repro.attacks.fgsm import BIM, FGSM
from repro.attacks.noise import GaussianNoise, SignNoise, UniformNoise
from repro.attacks.pgd import PGD
from repro.errors import ConfigurationError
from repro.training.trainer import TrainingConfig

__all__ = ["ExplorationConfig", "make_attack"]

_ATTACKS = {
    "pgd": PGD,
    "fgsm": FGSM,
    "bim": BIM,
    "uniform_noise": UniformNoise,
    "gaussian_noise": GaussianNoise,
    "sign_noise": SignNoise,
}


def make_attack(
    name: str,
    epsilon: float,
    steps: int = 10,
    alpha: float | None = None,
    random_start: bool = True,
    seed: int | None = None,
    clip_min: float = 0.0,
    clip_max: float = 1.0,
) -> Attack:
    """Build an attack by name at a given noise budget.

    Iteration parameters apply only to iterative attacks; the seed only to
    stochastic ones.  ``clip_min``/``clip_max`` define the valid pixel box
    (for MNIST-normalized inputs use
    :func:`repro.data.transforms.normalized_bounds`).
    """
    try:
        cls = _ATTACKS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown attack {name!r}; available: {tuple(sorted(_ATTACKS))}"
        ) from None
    if cls is PGD:
        return PGD(
            epsilon,
            steps=steps,
            alpha=alpha,
            random_start=random_start,
            clip_min=clip_min,
            clip_max=clip_max,
            rng=seed,
        )
    if cls is BIM:
        return BIM(epsilon, steps=steps, alpha=alpha, clip_min=clip_min, clip_max=clip_max)
    if cls is FGSM:
        return FGSM(epsilon, clip_min=clip_min, clip_max=clip_max)
    return cls(epsilon, clip_min=clip_min, clip_max=clip_max, rng=seed)


@dataclass(frozen=True)
class ExplorationConfig:
    """Inputs of Algorithm 1.

    The defaults mirror the paper's evaluation settings; the experiment
    profiles in :mod:`repro.experiments.profiles` override grid density
    and sample counts per profile.
    """

    v_thresholds: tuple[float, ...] = (0.25, 0.5, 0.75, 1.0, 1.25, 1.5, 1.75, 2.0, 2.25)
    """Explored firing thresholds ``Vi`` (paper Fig. 6 horizontal axis)."""

    time_windows: tuple[int, ...] = (8, 16, 24, 32, 40, 48, 56, 64, 72)
    """Explored time windows ``Tj`` (paper Fig. 6 vertical axis)."""

    epsilons: tuple[float, ...] = (0.5, 1.0, 1.5)
    """Adversarial noise budgets ``εk``."""

    accuracy_threshold: float = 0.70
    """Learnability gate ``Ath`` (paper: 70 %)."""

    attack: str = "pgd"
    """Attack family used in the security analysis."""

    attack_steps: int = 10
    """Iterations of the (iterative) attack."""

    attack_alpha: float | None = None
    """Per-step size; ``None`` selects the attack's default heuristic."""

    attack_random_start: bool = True
    """PGD random start inside the ε-ball."""

    attack_batch_size: int = 32
    """Batch size used while crafting adversarial examples."""

    clip_min: float = 0.0
    """Lower bound of the valid pixel box (projection set)."""

    clip_max: float = 1.0
    """Upper bound of the valid pixel box (projection set)."""

    training: TrainingConfig = field(default_factory=TrainingConfig)
    """Hyper-parameters for Algorithm 1's Train() step."""

    seed: int = 0
    """Root seed; every grid cell derives independent child seeds."""

    def validate(self) -> None:
        """Raise :class:`ConfigurationError` on inconsistent settings."""
        if not self.v_thresholds:
            raise ConfigurationError("v_thresholds must not be empty")
        if not self.time_windows:
            raise ConfigurationError("time_windows must not be empty")
        if any(v <= 0 for v in self.v_thresholds):
            raise ConfigurationError("all thresholds must be positive")
        if any(t < 1 for t in self.time_windows):
            raise ConfigurationError("all time windows must be >= 1")
        if not self.epsilons:
            raise ConfigurationError("epsilons must not be empty")
        if any(e < 0 for e in self.epsilons):
            raise ConfigurationError("epsilons must be >= 0")
        if not 0.0 <= self.accuracy_threshold <= 1.0:
            raise ConfigurationError("accuracy_threshold must be in [0, 1]")
        if self.attack not in _ATTACKS:
            raise ConfigurationError(
                f"unknown attack {self.attack!r}; available: {tuple(sorted(_ATTACKS))}"
            )
        if self.attack_batch_size < 1:
            raise ConfigurationError("attack_batch_size must be >= 1")
        if self.clip_min >= self.clip_max:
            raise ConfigurationError("need clip_min < clip_max")
        self.training.validate()

    def build_attack(self, epsilon: float, seed: int | None = None) -> Attack:
        """Instantiate the configured attack at budget ``epsilon``."""
        return make_attack(
            self.attack,
            epsilon,
            steps=self.attack_steps,
            alpha=self.attack_alpha,
            random_start=self.attack_random_start,
            seed=seed,
            clip_min=self.clip_min,
            clip_max=self.clip_max,
        )
