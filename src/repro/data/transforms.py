"""Array transforms for dataset post-processing and augmentation.

Transforms are callables ``(images: np.ndarray) -> np.ndarray`` operating on
batches ``(N, C, H, W)``; compose them with :class:`Compose`.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence

import numpy as np

from repro.utils.seeding import new_rng

Transform = Callable[[np.ndarray], np.ndarray]

MNIST_MEAN = 0.1307
"""Canonical MNIST pixel mean — the paper's pipeline (Norse tutorial)
normalizes with these constants, so the adversarial budgets ε of the paper
live in this normalized space (ε = 1 is ≈ 0.31 in raw pixel units)."""

MNIST_STD = 0.3081
"""Canonical MNIST pixel standard deviation (see :data:`MNIST_MEAN`)."""


def normalized_bounds(mean: float = MNIST_MEAN, std: float = MNIST_STD) -> tuple[float, float]:
    """Valid pixel range after normalisation of [0, 1] images.

    Attacks crafted in normalized space must clip into this box (the
    projection set ``S_x``) instead of [0, 1].
    """
    return (0.0 - mean) / std, (1.0 - mean) / std


class Compose:
    """Apply transforms left to right."""

    def __init__(self, transforms: Sequence[Transform]) -> None:
        self.transforms = list(transforms)

    def __call__(self, images: np.ndarray) -> np.ndarray:
        for transform in self.transforms:
            images = transform(images)
        return images


class Normalize:
    """Channel-wise standardisation ``(x - mean) / std``."""

    def __init__(self, mean: float, std: float) -> None:
        if std <= 0:
            raise ValueError(f"std must be positive, got {std}")
        self.mean = mean
        self.std = std

    def __call__(self, images: np.ndarray) -> np.ndarray:
        return (images - self.mean) / self.std


class Clip:
    """Clamp pixel values into ``[low, high]``."""

    def __init__(self, low: float = 0.0, high: float = 1.0) -> None:
        if low >= high:
            raise ValueError(f"need low < high, got {low} >= {high}")
        self.low = low
        self.high = high

    def __call__(self, images: np.ndarray) -> np.ndarray:
        return np.clip(images, self.low, self.high)


class AddGaussianNoise:
    """Additive Gaussian pixel noise (training-time augmentation)."""

    def __init__(self, std: float, seed: int | None = None) -> None:
        if std < 0:
            raise ValueError(f"std must be >= 0, got {std}")
        self.std = std
        self._rng = new_rng(seed)

    def __call__(self, images: np.ndarray) -> np.ndarray:
        if self.std == 0:
            return images
        noise = self._rng.normal(0.0, self.std, size=images.shape)
        return (images + noise).astype(images.dtype, copy=False)
