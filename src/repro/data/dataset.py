"""In-memory dataset and mini-batch loader."""

from __future__ import annotations

from collections.abc import Iterator

import numpy as np

from repro.errors import ShapeError
from repro.utils.seeding import new_rng


class ArrayDataset:
    """Paired image/label arrays held fully in memory.

    Parameters
    ----------
    images:
        Float array of shape ``(N, C, H, W)`` (or any ``(N, ...)``).
    labels:
        Integer array of shape ``(N,)``.
    """

    def __init__(self, images: np.ndarray, labels: np.ndarray) -> None:
        images = np.asarray(images)
        labels = np.asarray(labels, dtype=np.int64)
        if len(images) != len(labels):
            raise ShapeError(
                f"images ({len(images)}) and labels ({len(labels)}) disagree on N"
            )
        self.images = images
        self.labels = labels

    def __len__(self) -> int:
        return len(self.images)

    def __getitem__(self, index: int | slice | np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        return self.images[index], self.labels[index]

    @property
    def num_classes(self) -> int:
        """Number of distinct labels (max label + 1)."""
        return int(self.labels.max()) + 1 if len(self.labels) else 0

    def subset(self, indices: np.ndarray) -> "ArrayDataset":
        """Return a new dataset restricted to ``indices``."""
        indices = np.asarray(indices)
        return ArrayDataset(self.images[indices], self.labels[indices])

    def take(self, count: int) -> "ArrayDataset":
        """Return the first ``count`` samples (all if ``count`` exceeds N)."""
        return ArrayDataset(self.images[:count], self.labels[:count])

    def class_counts(self) -> np.ndarray:
        """Histogram of labels, length ``num_classes``."""
        return np.bincount(self.labels, minlength=self.num_classes)


def train_test_split(
    dataset: ArrayDataset,
    test_fraction: float = 0.2,
    seed: int | None = None,
) -> tuple[ArrayDataset, ArrayDataset]:
    """Shuffle and split a dataset into train/test parts."""
    if not 0.0 < test_fraction < 1.0:
        raise ValueError(f"test_fraction must be in (0, 1), got {test_fraction}")
    rng = new_rng(seed)
    order = rng.permutation(len(dataset))
    n_test = max(1, int(round(len(dataset) * test_fraction)))
    test_idx, train_idx = order[:n_test], order[n_test:]
    return dataset.subset(train_idx), dataset.subset(test_idx)


class DataLoader:
    """Deterministic mini-batch iterator over an :class:`ArrayDataset`.

    Shuffling (when enabled) reshuffles every epoch using a generator
    derived from ``seed``, so iteration order is reproducible.
    """

    def __init__(
        self,
        dataset: ArrayDataset,
        batch_size: int = 32,
        shuffle: bool = False,
        seed: int | None = None,
        drop_last: bool = False,
    ) -> None:
        if batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        self.dataset = dataset
        self.batch_size = batch_size
        self.shuffle = shuffle
        self.drop_last = drop_last
        self._rng = new_rng(seed)

    def __len__(self) -> int:
        n = len(self.dataset)
        if self.drop_last:
            return n // self.batch_size
        return (n + self.batch_size - 1) // self.batch_size

    def skip_epochs(self, count: int) -> None:
        """Advance the shuffle stream past ``count`` epochs without yielding.

        A training run resumed at epoch ``k`` from checkpointed weights
        must iterate the *same* batch order a continuous run would have
        seen at that epoch; burning the first ``k`` permutations keeps the
        per-epoch shuffle stream aligned.  A no-op when shuffling is off
        (iteration order is then epoch-independent).
        """
        if count < 0:
            raise ValueError(f"count must be >= 0, got {count}")
        if self.shuffle:
            n = len(self.dataset)
            for _ in range(count):
                self._rng.permutation(n)

    def __iter__(self) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        n = len(self.dataset)
        order = self._rng.permutation(n) if self.shuffle else np.arange(n)
        for start in range(0, n, self.batch_size):
            batch_idx = order[start : start + self.batch_size]
            if self.drop_last and len(batch_idx) < self.batch_size:
                return
            yield self.dataset[batch_idx]
