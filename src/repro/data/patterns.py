"""A second synthetic vision dataset: oriented gratings.

Not part of the paper's evaluation — used by the examples to show the
library generalises beyond digits, and by tests as an easily separable
workload.  Each class is a sinusoidal grating at a distinct orientation,
with random phase, frequency jitter and additive noise.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.dataset import ArrayDataset
from repro.errors import ConfigurationError
from repro.utils.seeding import SeedSequence


@dataclass(frozen=True)
class PatternsConfig:
    """Parameters of the oriented-grating generator."""

    image_size: int = 16
    """Canvas height/width in pixels."""

    num_classes: int = 4
    """Number of equally spaced orientations in [0, pi)."""

    frequency: float = 2.0
    """Base number of cycles across the canvas."""

    frequency_jitter: float = 0.25
    """Relative uniform jitter applied to the frequency per sample."""

    noise_std: float = 0.05
    """Std of additive Gaussian noise."""

    def validate(self) -> None:
        """Raise :class:`ConfigurationError` on out-of-range fields."""
        if self.image_size < 8:
            raise ConfigurationError("image_size must be >= 8")
        if self.num_classes < 2:
            raise ConfigurationError("num_classes must be >= 2")
        if self.frequency <= 0:
            raise ConfigurationError("frequency must be positive")
        if self.noise_std < 0:
            raise ConfigurationError("noise_std must be >= 0")


def make_patterns(
    num_samples: int,
    config: PatternsConfig | None = None,
    seed: int | None = None,
    split: str = "train",
) -> ArrayDataset:
    """Generate an oriented-grating dataset with balanced classes."""
    cfg = config or PatternsConfig()
    cfg.validate()
    if num_samples <= 0:
        raise ValueError(f"num_samples must be positive, got {num_samples}")
    rng = SeedSequence(seed).rng_for("patterns", split)
    size = cfg.image_size
    ys, xs = np.mgrid[0:size, 0:size].astype(np.float64) / size
    images = np.empty((num_samples, 1, size, size), dtype=np.float32)
    labels = np.empty(num_samples, dtype=np.int64)
    for index in range(num_samples):
        klass = index % cfg.num_classes
        theta = np.pi * klass / cfg.num_classes
        freq = cfg.frequency * rng.uniform(
            1.0 - cfg.frequency_jitter, 1.0 + cfg.frequency_jitter
        )
        phase = rng.uniform(0.0, 2.0 * np.pi)
        wave = np.sin(
            2.0 * np.pi * freq * (xs * np.cos(theta) + ys * np.sin(theta)) + phase
        )
        image = 0.5 + 0.5 * wave
        if cfg.noise_std > 0:
            image = image + rng.normal(0.0, cfg.noise_std, size=image.shape)
        images[index, 0] = np.clip(image, 0.0, 1.0)
        labels[index] = klass
    order = rng.permutation(num_samples)
    return ArrayDataset(images[order], labels[order])
