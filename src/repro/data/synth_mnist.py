"""Procedural MNIST substitute.

The paper evaluates on MNIST; this environment is offline, so we generate a
drop-in replacement: each sample starts from one of the ten canonical digit
glyphs (:mod:`repro.data.glyphs`) and is distorted through a randomized
pipeline of

1. up-sampling onto the target canvas,
2. random stroke-thickness change (grey dilation / erosion),
3. random affine transform (rotation, anisotropic scale, shear, translation),
4. Gaussian blur,
5. contrast jitter and additive background noise.

Pixels are floats in ``[0, 1]``, images are ``(N, 1, H, W)``, labels are
balanced over the ten classes.  Generation is deterministic for a given
``(seed, split)`` pair, and the i-th sample of a split does not depend on
how many samples are requested after it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
from scipy import ndimage

from repro.data.dataset import ArrayDataset
from repro.data.glyphs import NUM_CLASSES, all_glyphs
from repro.errors import ConfigurationError
from repro.utils.seeding import SeedSequence


@dataclass(frozen=True)
class SynthConfig:
    """Distortion parameters of the synthetic digit generator.

    The defaults are tuned so that a small CNN reaches ~99 % accuracy while
    an untrained model sits at 10 %, mirroring the difficulty profile of
    MNIST at reduced resolution.
    """

    image_size: int = 16
    """Output canvas height and width in pixels."""

    glyph_fill: float = 0.72
    """Fraction of the canvas height occupied by the glyph before distortion."""

    rotation_max_deg: float = 12.0
    """Rotation is drawn uniformly from ±this angle."""

    scale_range: tuple[float, float] = (0.85, 1.15)
    """Anisotropic per-axis scale factors are drawn from this interval."""

    shear_max: float = 0.15
    """Horizontal shear coefficient drawn uniformly from ±this value."""

    translate_frac: float = 0.08
    """Max translation in each axis, as a fraction of the image size."""

    thicken_prob: float = 0.45
    """Probability of dilating the stroke by one pixel."""

    thin_prob: float = 0.1
    """Probability of eroding the stroke (applied only if not thickened)."""

    blur_sigma_range: tuple[float, float] = (0.4, 0.8)
    """Gaussian blur sigma interval."""

    contrast_range: tuple[float, float] = (0.85, 1.0)
    """Peak intensity is scaled by a factor drawn from this interval."""

    noise_std: float = 0.02
    """Std of additive background Gaussian noise (clipped afterwards)."""

    def validate(self) -> None:
        """Raise :class:`ConfigurationError` on out-of-range fields."""
        if self.image_size < 8:
            raise ConfigurationError("image_size must be >= 8")
        if not 0.2 <= self.glyph_fill <= 1.0:
            raise ConfigurationError("glyph_fill must be in [0.2, 1.0]")
        if not 0.0 < self.scale_range[0] <= self.scale_range[1]:
            raise ConfigurationError("scale_range must be increasing and positive")
        if self.blur_sigma_range[0] < 0 or self.blur_sigma_range[0] > self.blur_sigma_range[1]:
            raise ConfigurationError("blur_sigma_range must be non-negative, increasing")
        if not 0 <= self.thicken_prob <= 1 or not 0 <= self.thin_prob <= 1:
            raise ConfigurationError("probabilities must be in [0, 1]")
        if self.noise_std < 0:
            raise ConfigurationError("noise_std must be >= 0")


class SyntheticMNIST:
    """Deterministic generator of MNIST-like digit datasets.

    Examples
    --------
    >>> gen = SyntheticMNIST(seed=0)
    >>> train = gen.generate(200, split="train")
    >>> train.images.shape
    (200, 1, 16, 16)
    """

    def __init__(self, config: SynthConfig | None = None, seed: int | None = None) -> None:
        self.config = config or SynthConfig()
        self.config.validate()
        self._seeds = SeedSequence(seed)
        self._glyphs = all_glyphs()

    def generate(self, num_samples: int, split: str = "train") -> ArrayDataset:
        """Render ``num_samples`` images for ``split`` ("train"/"test"/...).

        Labels are balanced (``i % 10`` before an order-preserving shuffle of
        sample positions drawn from the split's own generator).
        """
        if num_samples <= 0:
            raise ValueError(f"num_samples must be positive, got {num_samples}")
        rng = self._seeds.rng_for("synth-mnist", split)
        size = self.config.image_size
        images = np.empty((num_samples, 1, size, size), dtype=np.float32)
        labels = np.empty(num_samples, dtype=np.int64)
        for index in range(num_samples):
            digit = index % NUM_CLASSES
            images[index, 0] = self._render(digit, rng)
            labels[index] = digit
        order = rng.permutation(num_samples)
        return ArrayDataset(images[order], labels[order])

    # -- rendering pipeline -------------------------------------------------

    def _render(self, digit: int, rng: np.random.Generator) -> np.ndarray:
        cfg = self.config
        canvas = self._place_glyph(digit)
        canvas = self._random_thickness(canvas, rng)
        canvas = self._random_affine(canvas, rng)
        sigma = rng.uniform(*cfg.blur_sigma_range)
        canvas = ndimage.gaussian_filter(canvas, sigma=sigma)
        peak = canvas.max()
        if peak > 0:
            canvas = canvas / peak
        canvas *= rng.uniform(*cfg.contrast_range)
        if cfg.noise_std > 0:
            canvas = canvas + rng.normal(0.0, cfg.noise_std, size=canvas.shape)
        return np.clip(canvas, 0.0, 1.0).astype(np.float32)

    def _place_glyph(self, digit: int) -> np.ndarray:
        """Zoom the 5x7 glyph onto the centre of the canvas."""
        cfg = self.config
        glyph = self._glyphs[digit]
        target_h = max(6, int(round(cfg.image_size * cfg.glyph_fill)))
        zoom_factor = target_h / glyph.shape[0]
        scaled = ndimage.zoom(glyph, zoom_factor, order=1, grid_mode=True, mode="grid-constant")
        scaled = np.clip(scaled, 0.0, 1.0)
        canvas = np.zeros((cfg.image_size, cfg.image_size), dtype=np.float64)
        gh, gw = scaled.shape
        if gh > cfg.image_size or gw > cfg.image_size:
            scaled = scaled[: cfg.image_size, : cfg.image_size]
            gh, gw = scaled.shape
        top = (cfg.image_size - gh) // 2
        left = (cfg.image_size - gw) // 2
        canvas[top : top + gh, left : left + gw] = scaled
        return canvas

    def _random_thickness(self, canvas: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        cfg = self.config
        roll = rng.random()
        if roll < cfg.thicken_prob:
            return ndimage.grey_dilation(canvas, size=(2, 2))
        if roll < cfg.thicken_prob + cfg.thin_prob:
            return ndimage.grey_erosion(canvas, size=(2, 1))
        return canvas

    def _random_affine(self, canvas: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        cfg = self.config
        angle = np.deg2rad(rng.uniform(-cfg.rotation_max_deg, cfg.rotation_max_deg))
        scale_y = rng.uniform(*cfg.scale_range)
        scale_x = rng.uniform(*cfg.scale_range)
        shear = rng.uniform(-cfg.shear_max, cfg.shear_max)
        max_shift = cfg.translate_frac * cfg.image_size
        translate = rng.uniform(-max_shift, max_shift, size=2)  # (dy, dx)

        cos, sin = np.cos(angle), np.sin(angle)
        rotation = np.array([[cos, -sin], [sin, cos]])
        shear_mat = np.array([[1.0, shear], [0.0, 1.0]])
        scale_mat = np.diag([scale_y, scale_x])
        forward = rotation @ shear_mat @ scale_mat
        inverse = np.linalg.inv(forward)
        centre = np.array([(canvas.shape[0] - 1) / 2.0, (canvas.shape[1] - 1) / 2.0])
        # affine_transform maps output coords o to input coords M @ o + offset;
        # we want in = inverse @ (o - centre - translate) + centre.
        offset = centre - inverse @ (centre + translate)
        return ndimage.affine_transform(
            canvas, inverse, offset=offset, order=1, mode="constant", cval=0.0
        )


def load_synthetic_mnist(
    num_train: int = 1000,
    num_test: int = 500,
    image_size: int = 16,
    seed: int | None = None,
    config: SynthConfig | None = None,
) -> tuple[ArrayDataset, ArrayDataset]:
    """Convenience: return ``(train, test)`` datasets.

    ``config`` overrides ``image_size`` when both are given.
    """
    if config is None:
        config = SynthConfig(image_size=image_size)
    generator = SyntheticMNIST(config=config, seed=seed)
    return generator.generate(num_train, "train"), generator.generate(num_test, "test")
