"""Datasets and loading utilities.

The environment has no network access, so the MNIST database used by the
paper is replaced by :class:`~repro.data.synth_mnist.SyntheticMNIST` — a
procedural generator that renders the ten digit glyphs with randomized
affine distortion, stroke thickness, blur and noise.  It exercises the
same code path (10-class grey-scale image classification with pixels in
``[0, 1]``) and is deterministic per seed.  See DESIGN.md §2 for the full
substitution rationale.
"""

from repro.data.dataset import ArrayDataset, DataLoader, train_test_split
from repro.data.patterns import PatternsConfig, make_patterns
from repro.data.synth_mnist import SynthConfig, SyntheticMNIST, load_synthetic_mnist
from repro.data.transforms import (
    MNIST_MEAN,
    MNIST_STD,
    AddGaussianNoise,
    Clip,
    Compose,
    Normalize,
    normalized_bounds,
)

__all__ = [
    "AddGaussianNoise",
    "ArrayDataset",
    "Clip",
    "Compose",
    "DataLoader",
    "MNIST_MEAN",
    "MNIST_STD",
    "Normalize",
    "PatternsConfig",
    "SynthConfig",
    "SyntheticMNIST",
    "load_synthetic_mnist",
    "make_patterns",
    "normalized_bounds",
    "train_test_split",
]
