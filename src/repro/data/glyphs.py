"""Canonical 5x7 bitmap glyphs for the digits 0-9.

These are the seeds of the synthetic MNIST substitute: each sample starts
from one of these bitmaps and is then distorted (zoom, affine transform,
stroke-thickness change, blur, noise) by
:mod:`repro.data.synth_mnist`.
"""

from __future__ import annotations

import numpy as np

_GLYPH_ROWS: dict[int, tuple[str, ...]] = {
    0: (
        "01110",
        "10001",
        "10011",
        "10101",
        "11001",
        "10001",
        "01110",
    ),
    1: (
        "00100",
        "01100",
        "00100",
        "00100",
        "00100",
        "00100",
        "01110",
    ),
    2: (
        "01110",
        "10001",
        "00001",
        "00010",
        "00100",
        "01000",
        "11111",
    ),
    3: (
        "11111",
        "00010",
        "00100",
        "00010",
        "00001",
        "10001",
        "01110",
    ),
    4: (
        "00010",
        "00110",
        "01010",
        "10010",
        "11111",
        "00010",
        "00010",
    ),
    5: (
        "11111",
        "10000",
        "11110",
        "00001",
        "00001",
        "10001",
        "01110",
    ),
    6: (
        "00110",
        "01000",
        "10000",
        "11110",
        "10001",
        "10001",
        "01110",
    ),
    7: (
        "11111",
        "00001",
        "00010",
        "00100",
        "01000",
        "01000",
        "01000",
    ),
    8: (
        "01110",
        "10001",
        "10001",
        "01110",
        "10001",
        "10001",
        "01110",
    ),
    9: (
        "01110",
        "10001",
        "10001",
        "01111",
        "00001",
        "00010",
        "01100",
    ),
}

GLYPH_HEIGHT = 7
GLYPH_WIDTH = 5
NUM_CLASSES = 10


def digit_glyph(digit: int) -> np.ndarray:
    """Return the ``(7, 5)`` float bitmap (0/1) for ``digit``."""
    if digit not in _GLYPH_ROWS:
        raise ValueError(f"digit must be in 0..9, got {digit}")
    rows = _GLYPH_ROWS[digit]
    return np.array(
        [[1.0 if ch == "1" else 0.0 for ch in row] for row in rows],
        dtype=np.float32,
    )


def all_glyphs() -> np.ndarray:
    """Return the stacked ``(10, 7, 5)`` glyph array, index = digit."""
    return np.stack([digit_glyph(d) for d in range(NUM_CLASSES)])
